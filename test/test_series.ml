(* The flight-recorder timeline plane ([Obs.Series]) and its reader
   ([Obs.Timeline]): windowed flush semantics, the ring bound, the
   one-flag zero-allocation discipline when disabled, byte-identical
   determinism of the JSONL export, the Prometheus exposition, the
   Timeline change-point checks, and — at the [System] level — that
   enabling the plane never changes a query's answers.

   The plane is process-global and shared with the instrumented
   libraries, so every test runs inside [isolated]: reset, configure,
   enable, and restore the disabled default afterwards. Instrument
   names are namespaced test.series.* to stay clear of the library's
   own instruments. *)

module S = Obs.Series
module T = Obs.Timeline

let isolated ?(window = 4) f () =
  S.reset ();
  S.set_window window;
  S.set_capacity 65536;
  S.enable ();
  Fun.protect
    ~finally:(fun () ->
      S.disable ();
      S.reset ();
      S.set_window 64;
      S.set_capacity 65536)
    f

let ticks n =
  for _ = 1 to n do
    S.tick ()
  done

let parse_timeline () =
  match T.of_string (S.to_jsonl ()) with
  | Ok t -> t
  | Error msg -> Alcotest.fail ("series did not parse: " ^ msg)

(* --- flush semantics --- *)

let windowed_flush () =
  let c = S.counter "test.series.flush.c" in
  let g = S.gauge "test.series.flush.g" in
  let h = S.histo "test.series.flush.h" in
  (* Window 1 (ticks 1-4): counter +3, gauge 1 then 2, histo {4;5}. *)
  S.incr c;
  S.add c 2;
  S.set g 1.0;
  S.set g 2.0;
  S.observe h 4.0;
  S.observe_int h 5;
  ticks 4;
  (* Window 2 (ticks 5-8): silence — sparse series emit no points. *)
  ticks 4;
  (* Window 3 (ticks 9-12): counter +1 only. *)
  S.incr c;
  ticks 4;
  let t = parse_timeline () in
  Alcotest.(check int) "clock" 12 t.T.clock;
  Alcotest.(check int) "window" 4 t.T.window;
  let series metric = T.series t ~metric ~labels:[] in
  Alcotest.(check (list (pair int (float 1e-9))))
    "counter flushes window increments"
    [ (4, 3.0); (12, 1.0) ]
    (series "test.series.flush.c");
  Alcotest.(check (list (pair int (float 1e-9))))
    "gauge flushes its last write"
    [ (4, 2.0) ]
    (series "test.series.flush.g");
  (match
     List.filter (fun p -> p.T.metric = "test.series.flush.h") t.T.points
   with
  | [ { T.value = T.Summary { n; sum; lo; hi }; at; _ } ] ->
    Alcotest.(check int) "histo point at window end" 4 at;
    Alcotest.(check int) "histo n" 2 n;
    Alcotest.(check (float 1e-9)) "histo sum" 9.0 sum;
    Alcotest.(check (float 1e-9)) "histo min" 4.0 lo;
    Alcotest.(check (float 1e-9)) "histo max" 5.0 hi
  | ps -> Alcotest.failf "expected one histo summary point, got %d" (List.length ps));
  Alcotest.(check (list int))
    "mark ticks" [ 12 ]
    (T.mark_ticks
       (let () = S.mark "test.series.flush.mark" in
        parse_timeline ())
       "test.series.flush.mark")

let open_window_flushes_on_export () =
  let c = S.counter "test.series.open.c" in
  ticks 4;
  S.add c 7;
  ticks 2;
  (* Mid-window export: the open window (ticks 5-6) flushes at tick 6. *)
  let t = parse_timeline () in
  Alcotest.(check (list (pair int (float 1e-9))))
    "open window flushed at the current tick"
    [ (6, 7.0) ]
    (T.series t ~metric:"test.series.open.c" ~labels:[])

let labelled_instruments () =
  let c = S.counter ~labels:[ "peer" ] "test.series.lbl.c" in
  let h = S.histo ~labels:[ "sys" ] "test.series.lbl.h" in
  S.incr1 c "peer-1";
  S.incr1 c "peer-1";
  S.incr1 c "peer-9";
  S.observe1 h "a" 1.0;
  S.observe1 h "b" 0.5;
  ticks 4;
  let t = parse_timeline () in
  Alcotest.(check (list (pair string (list (pair string string)))))
    "selectors are sorted and distinct"
    [
      ("test.series.lbl.c", [ ("peer", "peer-1") ]);
      ("test.series.lbl.c", [ ("peer", "peer-9") ]);
      ("test.series.lbl.h", [ ("sys", "a") ]);
      ("test.series.lbl.h", [ ("sys", "b") ]);
    ]
    (T.selectors t);
  Alcotest.(check (list (pair int (float 1e-9))))
    "per-label timelines are independent"
    [ (4, 2.0) ]
    (T.series t ~metric:"test.series.lbl.c" ~labels:[ ("peer", "peer-1") ])

let kind_clash_rejected () =
  let _ = S.counter "test.series.clash" in
  match S.gauge "test.series.clash" with
  | _ -> Alcotest.fail "expected Invalid_argument on kind clash"
  | exception Invalid_argument _ -> ()

(* --- ring bound --- *)

let ring_bound_drops_oldest () =
  S.set_capacity 8;
  let c = S.counter "test.series.ring.c" in
  for _ = 1 to 20 do
    S.incr c;
    ticks 4
  done;
  Alcotest.(check int) "ring holds capacity points" 8 (S.point_count ());
  Alcotest.(check int) "overwritten points are counted" 12 (S.dropped ());
  let t = parse_timeline () in
  (* The flight recorder keeps the most recent history: the surviving
     points are the last 8 windows, ending at the current clock. *)
  let ats = List.map (fun (at, _) -> at) (T.series t ~metric:"test.series.ring.c" ~labels:[]) in
  Alcotest.(check (list int))
    "most recent windows survive"
    [ 52; 56; 60; 64; 68; 72; 76; 80 ]
    ats;
  Alcotest.(check int) "header reports drops" 12 t.T.dropped

(* --- one-flag discipline --- *)

let disabled_is_noop () =
  let c = S.counter ~labels:[ "peer" ] "test.series.off.c" in
  let g = S.gauge "test.series.off.g" in
  let h = S.histo "test.series.off.h" in
  S.disable ();
  S.incr c;
  S.incr1 c "peer-1";
  S.set g 9.0;
  S.observe h 1.0;
  S.mark "test.series.off.mark";
  ticks 50;
  S.enable ();
  Alcotest.(check int) "no points recorded" 0 (S.point_count ());
  Alcotest.(check int) "clock did not advance" 0 (S.now ());
  let t = parse_timeline () in
  Alcotest.(check (list int)) "no marks recorded" []
    (T.mark_ticks t "test.series.off.mark")

let disabled_allocates_nothing () =
  let c = S.counter ~labels:[ "peer"; "policy" ] "test.series.alloc.c" in
  let g = S.gauge "test.series.alloc.g" in
  let h = S.histo ~labels:[ "sys" ] "test.series.alloc.h" in
  S.disable ();
  let x = 0.25 in
  let before = Gc.minor_words () in
  for _ = 1 to 10_000 do
    S.incr c;
    S.add c 3;
    S.incr1 c "peer-1";
    S.add2 c "peer-1" "split" 2;
    S.set g x;
    S.observe h x;
    S.observe_int h 7;
    S.observe1 h "chaos" x;
    S.mark_i "test.series.alloc.mark" "node" 42;
    S.mark_s "test.series.alloc.mark" "peer" "peer-1";
    S.tick ()
  done;
  let after = Gc.minor_words () in
  S.enable ();
  (* Slop covers the boxed floats the two Gc.minor_words calls return —
     anything beyond that means a record path allocates while disabled. *)
  Alcotest.(check bool)
    (Printf.sprintf "disabled record path allocates nothing (delta %.0f words)"
       (after -. before))
    true
    (after -. before <= 16.0)

(* --- determinism --- *)

let scripted_run () =
  S.reset ();
  S.set_window 4;
  S.enable ();
  let c = S.counter ~labels:[ "peer" ] "test.series.det.c" in
  let h = S.histo "test.series.det.h" in
  let g = S.gauge "test.series.det.g" in
  for i = 1 to 40 do
    S.incr1 c (if i mod 3 = 0 then "peer-a" else "peer-b");
    S.observe h (float_of_int (i mod 7));
    S.set g (float_of_int i /. 8.0);
    if i = 10 then S.mark_i "test.series.det.mark" "node" 99;
    S.tick ()
  done;
  S.to_jsonl ()

let jsonl_deterministic () =
  let first = scripted_run () in
  let second = scripted_run () in
  Alcotest.(check string) "same script, byte-identical JSONL" first second

let system_timeline_deterministic () =
  (* The real instrumented stack: a faulted system plus its plane, driven
     twice with the same seed — marks, per-peer labels and windowed
     curves included, the exports must agree byte for byte. *)
  let module Config = P2prange.Config in
  let module System = P2prange.System in
  let run () =
    S.reset ();
    S.set_window 16;
    S.enable ();
    let config =
      Config.default
      |> Config.with_matching Config.Containment_match
      |> Config.with_kl ~k:Config.default.Config.k ~l:1
      |> Config.with_hinted_handoff true
      |> Config.with_faults
           {
             Config.spec = Faults.Plane.no_faults;
             retry = Faults.Retry.default;
           }
    in
    let sys = System.create ~config ~seed:42L ~n_peers:16 () in
    let plane = Option.get (System.fault_plane sys) in
    let peers = Array.of_list (System.peers sys) in
    let stream =
      Workload.Query_workload.create
        (Workload.Query_workload.Repeating { unique = 32 })
        ~domain:config.Config.domain ~seed:42L
    in
    let publish i =
      ignore
        (System.publish sys ~from:peers.(8 + (i mod 8))
           (Workload.Query_workload.next stream)
          : P2prange.Query_result.lookup_stats)
    in
    let query i =
      ignore
        (System.query sys ~from:peers.(8 + (i mod 8))
           (Workload.Query_workload.next stream)
          : P2prange.Query_result.t)
    in
    for i = 1 to 60 do
      publish i
    done;
    Faults.Plane.crash plane (P2prange.Peer.id peers.(0));
    for i = 1 to 60 do
      if i mod 3 = 0 then publish i else query i
    done;
    Faults.Plane.recover plane (P2prange.Peer.id peers.(0));
    System.repair sys;
    for i = 1 to 30 do
      query i
    done;
    S.to_jsonl ()
  in
  let first = run () in
  let second = run () in
  Alcotest.(check string) "same seed, byte-identical timeline" first second;
  (* And the scenario actually produced marks + per-window points. *)
  match T.of_string first with
  | Error msg -> Alcotest.fail msg
  | Ok t ->
    Alcotest.(check int)
      "crash mark recorded once" 1
      (List.length (T.mark_ticks t "faults.crash"));
    Alcotest.(check bool) "repair mark present" true
      (T.mark_ticks t "system.repair" <> []);
    Alcotest.(check bool) "windowed points present" true (t.T.points <> [])

let queries_unchanged_by_series () =
  (* Flight-recorder neutrality: the same seeded workload returns
     value-identical answers whether the plane is off or on. *)
  let module Config = P2prange.Config in
  let module System = P2prange.System in
  let run () =
    let config =
      Config.default
      |> Config.with_matching Config.Containment_match
      |> Config.with_kl ~k:Config.default.Config.k ~l:1
    in
    let sys = System.create ~config ~seed:7L ~n_peers:12 () in
    let peers = Array.of_list (System.peers sys) in
    let stream =
      Workload.Query_workload.create
        (Workload.Query_workload.Repeating { unique = 32 })
        ~domain:config.Config.domain ~seed:7L
    in
    for i = 0 to 49 do
      ignore
        (System.publish sys ~from:peers.(i mod 12)
           (Workload.Query_workload.next stream)
          : P2prange.Query_result.lookup_stats)
    done;
    List.init 50 (fun i ->
        let r =
          System.query sys ~from:peers.(i mod 12)
            (Workload.Query_workload.next stream)
        in
        (r.P2prange.Query_result.recall, r.P2prange.Query_result.stats))
  in
  S.disable ();
  let off = run () in
  S.reset ();
  S.set_window 4;
  S.enable ();
  let on = run () in
  Alcotest.(check bool) "answers identical with the plane on" true (off = on);
  Alcotest.(check bool) "the plane did record something" true
    (S.point_count () > 0 || S.now () > 0)

(* --- prometheus exposition --- *)

let prometheus_export () =
  let c = S.counter ~labels:[ "peer" ] "test.series.prom.c" in
  let h = S.histo "test.series.prom.h" in
  S.incr1 c "peer-1";
  S.incr1 c "peer-1";
  S.incr1 c "peer-2";
  S.observe h 2.0;
  S.observe h 4.0;
  ticks 4;
  let text = S.to_prometheus () in
  let contains needle =
    let nl = String.length needle and tl = String.length text in
    let rec go i = i + nl <= tl && (String.sub text i nl = needle || go (i + 1)) in
    go 0
  in
  List.iter
    (fun needle ->
      Alcotest.(check bool) (Printf.sprintf "contains %S" needle) true
        (contains needle))
    [
      "# TYPE p2prange_test_series_prom_c counter";
      "p2prange_test_series_prom_c{peer=\"peer-1\"} 2";
      "p2prange_test_series_prom_c{peer=\"peer-2\"} 1";
      "# TYPE p2prange_test_series_prom_h summary";
      "p2prange_test_series_prom_h_count 2";
      "p2prange_test_series_prom_h_sum 6";
    ]

(* --- the Timeline change-point gates --- *)

let dip_scenario () =
  S.reset ();
  S.set_window 4;
  S.enable ();
  let h = S.histo ~labels:[ "sys" ] "test.series.gate.recall" in
  (* 5 healthy windows at recall 1.0, a fault mark, then windows at 0.5
     for one side while the twin stays at 1.0, then both recover. *)
  for _ = 1 to 5 do
    for _ = 1 to 4 do
      S.observe1 h "chaos" 1.0;
      S.observe1 h "twin" 1.0;
      S.tick ()
    done
  done;
  S.mark "test.series.gate.fault";
  for _ = 1 to 3 do
    for _ = 1 to 4 do
      S.observe1 h "chaos" 0.5;
      S.observe1 h "twin" 1.0;
      S.tick ()
    done
  done;
  S.mark "test.series.gate.repair";
  for _ = 1 to 4 do
    for _ = 1 to 4 do
      S.observe1 h "chaos" 0.9;
      S.observe1 h "twin" 0.9;
      S.tick ()
    done
  done;
  parse_timeline ()

let check_dip_gate () =
  let t = dip_scenario () in
  (match
     T.check_dip t ~metric:"test.series.gate.recall"
       ~labels:[ ("sys", "chaos") ]
       ~mark:"test.series.gate.fault" ~within:8 ~min_dip:0.2
   with
  | Ok _ -> ()
  | Error msg -> Alcotest.fail ("dip should pass: " ^ msg));
  (match
     T.check_dip t ~metric:"test.series.gate.recall"
       ~labels:[ ("sys", "twin") ]
       ~mark:"test.series.gate.fault" ~within:8 ~min_dip:0.2
   with
  | Ok msg -> Alcotest.fail ("twin never dips, yet: " ^ msg)
  | Error _ -> ());
  match
    T.check_dip t ~metric:"test.series.gate.recall"
      ~labels:[ ("sys", "chaos") ]
      ~mark:"test.series.gate.missing" ~within:8 ~min_dip:0.2
  with
  | Ok msg -> Alcotest.fail ("missing mark, yet: " ^ msg)
  | Error _ -> ()

let check_converge_gate () =
  let t = dip_scenario () in
  (match
     T.check_converge t ~metric:"test.series.gate.recall"
       ~labels_a:[ ("sys", "chaos") ]
       ~labels_b:[ ("sys", "twin") ]
       ~mark:"test.series.gate.repair" ~eps:0.01
   with
  | Ok _ -> ()
  | Error msg -> Alcotest.fail ("converge should pass: " ^ msg));
  match
    T.check_converge t ~metric:"test.series.gate.recall"
      ~labels_a:[ ("sys", "chaos") ]
      ~labels_b:[ ("sys", "twin") ]
      ~mark:"test.series.gate.fault" ~eps:0.01
  with
  | Ok msg ->
    (* After the *fault* mark the curves disagree for 3 windows before
       recovering together; pooled means differ by ~0.1. *)
    Alcotest.fail ("diverged window should fail: " ^ msg)
  | Error _ -> ()

let timeline_rejects_garbage () =
  (match T.of_string "" with
  | Ok _ -> Alcotest.fail "empty input accepted"
  | Error _ -> ());
  (match T.of_string "{\"schema_version\":2,\"kind\":\"p2prange.series\"}" with
  | Ok _ -> Alcotest.fail "wrong schema_version accepted"
  | Error _ -> ());
  match T.of_string "{\"schema_version\":1,\"kind\":\"p2prange.trace\"}" with
  | Ok _ -> Alcotest.fail "wrong kind accepted"
  | Error _ -> ()

let suite =
  [
    Alcotest.test_case "windowed flush semantics" `Quick
      (isolated windowed_flush);
    Alcotest.test_case "open windows flush on export" `Quick
      (isolated open_window_flushes_on_export);
    Alcotest.test_case "labelled instruments split timelines" `Quick
      (isolated labelled_instruments);
    Alcotest.test_case "registry rejects cross-kind name reuse" `Quick
      (isolated kind_clash_rejected);
    Alcotest.test_case "ring bound drops oldest, counts drops" `Quick
      (isolated ring_bound_drops_oldest);
    Alcotest.test_case "disabled mode is a no-op" `Quick
      (isolated disabled_is_noop);
    Alcotest.test_case "disabled record path allocates nothing" `Quick
      (isolated disabled_allocates_nothing);
    Alcotest.test_case "JSONL export is deterministic" `Quick
      (isolated jsonl_deterministic);
    Alcotest.test_case "system timeline is byte-reproducible" `Quick
      (isolated system_timeline_deterministic);
    Alcotest.test_case "enabling the plane never changes answers" `Quick
      (isolated queries_unchanged_by_series);
    Alcotest.test_case "prometheus exposition" `Quick
      (isolated prometheus_export);
    Alcotest.test_case "change-point dip gate" `Quick (isolated check_dip_gate);
    Alcotest.test_case "convergence gate" `Quick (isolated check_converge_gate);
    Alcotest.test_case "timeline rejects non-series input" `Quick
      (isolated timeline_rejects_garbage);
  ]
