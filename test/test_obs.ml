(* The metrics registry: counter/timer/histogram semantics, the global
   enable flag (disabled mode must be a no-op), and the JSON emitter.

   The registry is process-global and shared with the instrumented
   libraries, so every test runs inside [isolated], which enables metrics,
   resets all values, and restores the disabled default afterwards. *)

module M = Obs.Metrics
module J = Obs.Json

let isolated f () =
  M.enable ();
  M.reset ();
  Fun.protect
    ~finally:(fun () ->
      M.disable ();
      M.reset ())
    f

let counter_semantics () =
  let c = M.counter "test.obs.counter" in
  Alcotest.(check int) "starts at zero" 0 (M.counter_value c);
  M.incr c;
  M.incr c;
  M.add c 40;
  Alcotest.(check int) "incr + add" 42 (M.counter_value c);
  let again = M.counter "test.obs.counter" in
  M.incr again;
  Alcotest.(check int) "same name is the same counter" 43 (M.counter_value c)

let disabled_is_noop () =
  let c = M.counter "test.obs.disabled" in
  let h = M.histogram "test.obs.disabled.h" in
  let t = M.timer "test.obs.disabled.t" in
  M.disable ();
  M.incr c;
  M.add c 10;
  M.observe h 5.0;
  let result = M.time t (fun () -> 17) in
  M.enable ();
  Alcotest.(check int) "thunk still runs" 17 result;
  Alcotest.(check int) "counter untouched" 0 (M.counter_value c);
  Alcotest.(check int) "histogram untouched" 0 (M.hist_count h);
  Alcotest.(check int) "timer untouched" 0 (M.timer_count t)

let timer_semantics () =
  let t = M.timer "test.obs.timer" in
  let v = M.time t (fun () -> String.length "hello") in
  Alcotest.(check int) "returns the thunk value" 5 v;
  Alcotest.(check int) "one call recorded" 1 (M.timer_count t);
  Alcotest.(check bool) "non-negative total" true (M.timer_total_ms t >= 0.0);
  (* The clock stops even when the thunk raises. *)
  (try M.time t (fun () -> failwith "boom") with Failure _ -> ());
  Alcotest.(check int) "raising call still recorded" 2 (M.timer_count t)

let histogram_semantics () =
  let h = M.histogram "test.obs.hist" in
  List.iter (fun v -> M.observe_int h v) [ 1; 2; 2; 3; 10 ];
  Alcotest.(check int) "count" 5 (M.hist_count h);
  Alcotest.(check (float 1e-9)) "mean" 3.6 (M.hist_mean h);
  Alcotest.(check (float 1e-9)) "min" 1.0 (M.hist_min h);
  Alcotest.(check (float 1e-9)) "max" 10.0 (M.hist_max h);
  Alcotest.(check (float 1e-9)) "p50 lands on 2" 2.0 (M.hist_percentile h 50.0);
  Alcotest.(check (float 1e-9)) "p100 is the max" 10.0 (M.hist_percentile h 100.0)

let histogram_overflow_bucket () =
  let h = M.histogram ~bounds:[| 1.0; 2.0; 4.0 |] "test.obs.hist.bounded" in
  List.iter (M.observe h) [ 0.5; 3.0; 1000.0 ];
  Alcotest.(check int) "overflow observations counted" 3 (M.hist_count h);
  Alcotest.(check (float 1e-9)) "exact max survives overflow" 1000.0
    (M.hist_max h);
  Alcotest.(check (float 1e-9)) "p99 resolves to the overflow max" 1000.0
    (M.hist_percentile h 99.0)

let empty_histogram () =
  let h = M.histogram "test.obs.hist.empty" in
  Alcotest.(check bool) "mean is NaN" true (Float.is_nan (M.hist_mean h));
  Alcotest.(check bool) "percentile is NaN" true
    (Float.is_nan (M.hist_percentile h 50.0))

let registry_type_clash () =
  let _ = M.counter "test.obs.clash" in
  Alcotest.check_raises "name reuse across types"
    (Invalid_argument "Metrics: \"test.obs.clash\" already registered with another type")
    (fun () -> ignore (M.timer "test.obs.clash"))

let reset_zeroes_in_place () =
  let c = M.counter "test.obs.reset" in
  let h = M.histogram "test.obs.reset.h" in
  M.add c 7;
  M.observe h 3.0;
  M.reset ();
  Alcotest.(check int) "counter zeroed" 0 (M.counter_value c);
  Alcotest.(check int) "histogram zeroed" 0 (M.hist_count h);
  M.incr c;
  Alcotest.(check int) "handle still live after reset" 1 (M.counter_value c)

let json_golden () =
  (* The emitter itself, pinned byte-for-byte. *)
  let doc =
    J.Obj
      [
        ("name", J.String "p2p \"range\"");
        ("n", J.Int 42);
        ("rate", J.Float 0.5);
        ("bad", J.Float Float.nan);
        ("ok", J.Bool true);
        ("items", J.List [ J.Int 1; J.Int 2 ]);
        ("empty", J.Obj []);
      ]
  in
  Alcotest.(check string) "compact rendering"
    "{\"name\":\"p2p \\\"range\\\"\",\"n\":42,\"rate\":0.5,\"bad\":null,\"ok\":true,\"items\":[1,2],\"empty\":{}}"
    (J.to_string ~indent:0 doc);
  Alcotest.(check string) "indented rendering"
    "{\n  \"a\": [\n    1\n  ]\n}"
    (J.to_string (J.Obj [ ("a", J.List [ J.Int 1 ]) ]))

let gauge_semantics () =
  let g = M.gauge "test.obs.gauge" in
  Alcotest.(check bool) "unset is NaN" true (Float.is_nan (M.gauge_value g));
  M.set_gauge g 2.5;
  M.set_gauge g 7.25;
  Alcotest.(check (float 0.0)) "last write wins" 7.25 (M.gauge_value g);
  M.disable ();
  M.set_gauge g 99.0;
  M.enable ();
  Alcotest.(check (float 0.0)) "disabled set is a no-op" 7.25 (M.gauge_value g);
  M.reset ();
  Alcotest.(check bool) "reset unsets" true (Float.is_nan (M.gauge_value g))

let json_parse_roundtrip () =
  (* Everything the emitter can print must parse back structurally equal
     (non-finite floats are emitted as null, so they are excluded here —
     the golden test pins that mapping). *)
  let doc =
    J.Obj
      [
        ("name", J.String "p2p \"range\" \\ \n tab\t");
        ("unicode", J.String "\xe2\x86\x92");
        ("n", J.Int (-42));
        ("big", J.Int max_int);
        ("rate", J.Float 0.1);
        ("tiny", J.Float 1.5e-300);
        ("ok", J.Bool true);
        ("no", J.Bool false);
        ("nothing", J.Null);
        ("items", J.List [ J.Int 1; J.Float 2.5; J.List []; J.Obj [] ]);
      ]
  in
  List.iter
    (fun indent ->
      match J.of_string (J.to_string ~indent doc) with
      | Ok parsed -> Alcotest.(check bool) "round-trips" true (parsed = doc)
      | Error msg -> Alcotest.fail ("parse failed: " ^ msg))
    [ 0; 2 ];
  (* Escapes decode, including \u sequences. *)
  (match J.of_string {|{"a": "x\u0041\n\u2192"}|} with
  | Ok t -> Alcotest.(check bool) "escapes" true
      (t = J.Obj [ ("a", J.String "xA\n\xe2\x86\x92") ])
  | Error msg -> Alcotest.fail msg);
  let rejects s =
    match J.of_string s with
    | Ok _ -> Alcotest.fail ("accepted malformed input: " ^ s)
    | Error _ -> ()
  in
  List.iter rejects
    [ ""; "{"; "[1,]"; "{\"a\":}"; "tru"; "1 2"; "{\"a\":1} x"; "\"\\q\"";
      "nan"; "'single'" ]

let snapshot_roundtrip () =
  (* The bench's actual artifact path: a snapshot of live metrics printed
     with the emitter must parse back equal through [of_string] — the same
     check CI's check_bench relies on. *)
  let c = M.counter "test.obs.rt.counter" in
  let g = M.gauge "test.obs.rt.gauge" in
  let unset = M.gauge "test.obs.rt.unset" in
  let h = M.histogram "test.obs.rt.hist" in
  ignore unset;
  M.add c 12;
  M.set_gauge g 0.75;
  List.iter (M.observe h) [ 1.0; 2.0; 3.0 ];
  let snap = M.snapshot () in
  match J.of_string (J.to_string snap) with
  | Error msg -> Alcotest.fail ("snapshot did not parse: " ^ msg)
  | Ok parsed ->
    Alcotest.(check bool) "snapshot round-trips" true (parsed = snap);
    (match J.member "gauges" parsed with
    | Some (J.Obj gauges) ->
      Alcotest.(check bool) "set gauge survives" true
        (List.assoc_opt "test.obs.rt.gauge" gauges = Some (J.Float 0.75));
      Alcotest.(check bool) "unset gauge parses back as null" true
        (List.assoc_opt "test.obs.rt.unset" gauges = Some J.Null)
    | Some _ | None -> Alcotest.fail "snapshot lacks a gauges object")

let snapshot_structure () =
  let c = M.counter "test.obs.snap.counter" in
  let h = M.histogram "test.obs.snap.hist" in
  M.add c 3;
  M.observe_int h 4;
  let snap = M.snapshot () in
  (match J.member "counters" snap with
  | Some (J.Obj counters) ->
    Alcotest.(check bool) "counter present with value" true
      (List.assoc_opt "test.obs.snap.counter" counters = Some (J.Int 3))
  | Some _ | None -> Alcotest.fail "snapshot lacks a counters object");
  (match J.member "histograms" snap with
  | Some (J.Obj hists) -> (
    match List.assoc_opt "test.obs.snap.hist" hists with
    | Some (J.Obj fields) ->
      Alcotest.(check bool) "count field" true
        (List.assoc_opt "count" fields = Some (J.Int 1));
      Alcotest.(check bool) "p99 field present" true
        (List.mem_assoc "p99" fields)
    | Some _ | None -> Alcotest.fail "snapshot lacks the test histogram")
  | Some _ | None -> Alcotest.fail "snapshot lacks a histograms object");
  (* A snapshot is valid JSON input for the golden emitter path too. *)
  Alcotest.(check bool) "renders non-empty" true
    (String.length (J.to_string snap) > 0)

let snapshot_wall_subtree () =
  (* Wall-clock readings — timers and wall gauges — live in their own
     "wall" subtree, so baseline comparisons over "gauges" never see
     them: the deterministic top level must not leak a wall gauge. *)
  let t = M.timer "test.obs.wall.timer" in
  let wg = M.wall_gauge "test.obs.wall.gauge" in
  let g = M.gauge "test.obs.wall.plain" in
  ignore (M.time t (fun () -> 1));
  M.set_gauge wg 123.0;
  M.set_gauge g 7.0;
  let snap = M.snapshot () in
  (match J.member "wall" snap with
  | Some wall ->
    (match J.member "timers" wall with
    | Some (J.Obj timers) ->
      Alcotest.(check bool) "timer under wall" true
        (List.mem_assoc "test.obs.wall.timer" timers)
    | Some _ | None -> Alcotest.fail "wall lacks a timers object");
    (match J.member "gauges" wall with
    | Some (J.Obj gauges) ->
      Alcotest.(check bool) "wall gauge under wall" true
        (List.assoc_opt "test.obs.wall.gauge" gauges = Some (J.Float 123.0));
      Alcotest.(check bool) "plain gauge not under wall" true
        (not (List.mem_assoc "test.obs.wall.plain" gauges))
    | Some _ | None -> Alcotest.fail "wall lacks a gauges object")
  | None -> Alcotest.fail "snapshot lacks the wall subtree");
  (match J.member "gauges" snap with
  | Some (J.Obj gauges) ->
    Alcotest.(check bool) "plain gauge stays top-level" true
      (List.assoc_opt "test.obs.wall.plain" gauges = Some (J.Float 7.0));
    Alcotest.(check bool) "wall gauge absent from top-level gauges" true
      (not (List.mem_assoc "test.obs.wall.gauge" gauges))
  | Some _ | None -> Alcotest.fail "snapshot lacks a gauges object");
  match J.member "timers" snap with
  | None -> ()
  | Some _ -> Alcotest.fail "timers must no longer be a top-level member"

(* Property: any document the emitter can produce — nested fault-section
   objects, gauge [null]s, finite floats, metric-name keys — parses back
   structurally equal, at both indentations. Generated trees mimic the
   snapshot shape rather than arbitrary JSON: that is the contract the
   parser was written for. *)
let gen_json =
  let open QCheck.Gen in
  let key =
    map (String.concat ".")
      (list_size (1 -- 3)
         (oneofl
            [ "faults"; "bench"; "recall"; "drops"; "retry_on"; "gap";
              "sends"; "p50"; "system"; "degraded" ]))
  in
  (* Finite floats spanning magnitudes, the way rates and latencies do. *)
  let finite_float =
    map2
      (fun m e -> float_of_int m *. (10.0 ** float_of_int e))
      (int_range (-1_000_000) 1_000_000)
      (int_range (-6) 6)
  in
  let leaf =
    oneof
      [
        return J.Null;
        map (fun b -> J.Bool b) bool;
        map (fun i -> J.Int i) int;
        map (fun f -> J.Float f) finite_float;
        map (fun s -> J.String s) (small_string ~gen:printable);
      ]
  in
  let rec tree depth =
    if depth = 0 then leaf
    else
      frequency
        [
          (2, leaf);
          ( 3,
            map
              (fun fields -> J.Obj fields)
              (list_size (0 -- 4)
                 (pair key (tree (depth - 1)))) );
          (1, map (fun xs -> J.List xs) (list_size (0 -- 4) (tree (depth - 1))));
        ]
  in
  (* Root shaped like a bench document: sections -> gauges with nulls. *)
  map
    (fun (body, gap) ->
      J.Obj
        [
          ("schema_version", J.Int 1);
          ( "sections",
            J.Obj
              [
                ( "faults",
                  J.Obj
                    [
                      ( "metrics",
                        J.Obj
                          [
                            ( "gauges",
                              J.Obj
                                [
                                  ("faults.bench.recall_gap", gap);
                                  ("balance.bench.imbalance_off", J.Null);
                                ] );
                          ] );
                      ("derived", body);
                    ] );
              ] );
        ])
    (pair (tree 3) (oneof [ return J.Null; map (fun f -> J.Float f) finite_float ]))

(* Regression: an empty histogram's snapshot must emit [null] for every
   statistic (NaN has no JSON encoding), never raise, and still parse
   back structurally equal. *)
let empty_histogram_snapshot_nulls () =
  let _ = M.histogram "test.obs.hist.empty_json" in
  let snap = M.snapshot () in
  (match J.member "histograms" snap with
  | Some (J.Obj hists) -> (
    match List.assoc_opt "test.obs.hist.empty_json" hists with
    | Some (J.Obj fields) ->
      Alcotest.(check bool) "count is zero" true
        (List.assoc_opt "count" fields = Some (J.Int 0));
      List.iter
        (fun key ->
          Alcotest.(check bool) (key ^ " is null") true
            (List.assoc_opt key fields = Some J.Null))
        [ "mean"; "min"; "max"; "p50"; "p90"; "p99" ]
    | Some _ | None -> Alcotest.fail "empty histogram missing from snapshot")
  | Some _ | None -> Alcotest.fail "snapshot lacks a histograms object");
  match J.of_string (J.to_string snap) with
  | Ok parsed ->
    Alcotest.(check bool) "empty-histogram snapshot round-trips" true
      (parsed = snap)
  | Error msg -> Alcotest.fail ("snapshot did not parse: " ^ msg)

(* An observed infinity must null the affected statistics the same way —
   [Json.Float infinity] would print as "null" but break structural
   round-trips. *)
let infinite_observation_nulls () =
  let h = M.histogram "test.obs.hist.inf" in
  M.observe h Float.infinity;
  let snap = M.snapshot () in
  (match J.member "histograms" snap with
  | Some (J.Obj hists) -> (
    match List.assoc_opt "test.obs.hist.inf" hists with
    | Some (J.Obj fields) ->
      Alcotest.(check bool) "count is one" true
        (List.assoc_opt "count" fields = Some (J.Int 1));
      List.iter
        (fun key ->
          Alcotest.(check bool) (key ^ " is null") true
            (List.assoc_opt key fields = Some J.Null))
        [ "mean"; "max"; "p50"; "p90"; "p99" ]
    | Some _ | None -> Alcotest.fail "histogram missing from snapshot")
  | Some _ | None -> Alcotest.fail "snapshot lacks a histograms object");
  match J.of_string (J.to_string snap) with
  | Ok parsed ->
    Alcotest.(check bool) "infinite-observation snapshot round-trips" true
      (parsed = snap)
  | Error msg -> Alcotest.fail ("snapshot did not parse: " ^ msg)

(* Seeded torture round-trip: deep nesting, escape-heavy strings (quotes,
   backslashes, control characters, multi-byte UTF-8, text that looks
   like escape sequences), and ints near [max_int]. Deterministic in the
   Splitmix seed, so a failure reproduces exactly. *)
let seeded_roundtrip_torture () =
  let rng = Prng.Splitmix.create 2003L in
  let nasty_string () =
    let len = Prng.Splitmix.int rng 24 in
    let buf = Buffer.create len in
    for _ = 1 to len do
      match Prng.Splitmix.int rng 6 with
      | 0 -> Buffer.add_char buf '"'
      | 1 -> Buffer.add_char buf '\\'
      | 2 -> Buffer.add_char buf (Char.chr (Prng.Splitmix.int rng 32))
      | 3 -> Buffer.add_string buf "\xe2\x86\x92"
      | 4 -> Buffer.add_char buf (Char.chr (32 + Prng.Splitmix.int rng 95))
      | _ -> Buffer.add_string buf "\\u0041"
    done;
    Buffer.contents buf
  in
  let big_int () =
    let near = max_int - Prng.Splitmix.int rng 1000 in
    if Prng.Splitmix.bool rng then near else -near
  in
  let leaf () =
    match Prng.Splitmix.int rng 5 with
    | 0 -> J.Null
    | 1 -> J.Bool (Prng.Splitmix.bool rng)
    | 2 -> J.Int (big_int ())
    | 3 -> J.Float ((Prng.Splitmix.float rng -. 0.5) *. 1e6)
    | _ -> J.String (nasty_string ())
  in
  let rec tree depth =
    if depth = 0 then leaf ()
    else
      match Prng.Splitmix.int rng 3 with
      | 0 -> leaf ()
      | 1 ->
        J.List
          (List.init (1 + Prng.Splitmix.int rng 3) (fun _ -> tree (depth - 1)))
      | _ ->
        (* The index suffix keeps keys unique within one object. *)
        J.Obj
          (List.init
             (1 + Prng.Splitmix.int rng 3)
             (fun i ->
               (Printf.sprintf "%s#%d" (nasty_string ()) i, tree (depth - 1))))
  in
  for case = 1 to 200 do
    let doc = tree 8 in
    List.iter
      (fun indent ->
        match J.of_string (J.to_string ~indent doc) with
        | Ok parsed ->
          if parsed <> doc then
            Alcotest.failf "case %d (indent %d): reparse differs" case indent
        | Error msg ->
          Alcotest.failf "case %d (indent %d): %s" case indent msg)
      [ 0; 2 ]
  done

let prop_parser_roundtrips_generated_documents =
  QCheck.Test.make ~name:"of_string round-trips generated snapshot documents"
    ~count:200
    (QCheck.make ~print:(fun t -> J.to_string t) gen_json)
    (fun doc ->
      List.for_all
        (fun indent ->
          match J.of_string (J.to_string ~indent doc) with
          | Ok parsed -> parsed = doc
          | Error _ -> false)
        [ 0; 2 ])

let suite =
  [
    Alcotest.test_case "counter semantics" `Quick (isolated counter_semantics);
    Alcotest.test_case "disabled mode is a no-op" `Quick
      (isolated disabled_is_noop);
    Alcotest.test_case "timer semantics" `Quick (isolated timer_semantics);
    Alcotest.test_case "histogram semantics" `Quick
      (isolated histogram_semantics);
    Alcotest.test_case "histogram overflow bucket" `Quick
      (isolated histogram_overflow_bucket);
    Alcotest.test_case "empty histogram yields NaN" `Quick
      (isolated empty_histogram);
    Alcotest.test_case "registry rejects cross-type name reuse" `Quick
      (isolated registry_type_clash);
    Alcotest.test_case "reset zeroes metrics in place" `Quick
      (isolated reset_zeroes_in_place);
    Alcotest.test_case "gauge semantics" `Quick (isolated gauge_semantics);
    Alcotest.test_case "JSON golden rendering" `Quick (isolated json_golden);
    Alcotest.test_case "JSON parser round-trips the emitter" `Quick
      (isolated json_parse_roundtrip);
    Alcotest.test_case "metric snapshot round-trips" `Quick
      (isolated snapshot_roundtrip);
    Alcotest.test_case "snapshot structure" `Quick (isolated snapshot_structure);
    Alcotest.test_case "wall-clock readings live in the wall subtree" `Quick
      (isolated snapshot_wall_subtree);
    Alcotest.test_case "empty histogram snapshot emits nulls" `Quick
      (isolated empty_histogram_snapshot_nulls);
    Alcotest.test_case "infinite observation nulls the statistics" `Quick
      (isolated infinite_observation_nulls);
    Alcotest.test_case "seeded deep/escape/max_int round-trip" `Quick
      (isolated seeded_roundtrip_torture);
    QCheck_alcotest.to_alcotest prop_parser_roundtrips_generated_documents;
  ]
