(* The assembled system: protocol invariants — identifiers, routing,
   caching, exact-match behaviour, padding integration, determinism. *)

module Range = Rangeset.Range
module Sys_ = P2prange.System
module Query_result = P2prange.Query_result

let mk lo hi = Range.make ~lo ~hi

let default_system ?(config = P2prange.Config.default) () =
  Sys_.create ~config ~seed:7L ~n_peers:20 ()

let construction () =
  let s = default_system () in
  Alcotest.(check int) "peer count" 20 (Sys_.peer_count s);
  Alcotest.(check int) "ring size matches" 20 (Chord.Ring.size (Sys_.ring s));
  Alcotest.(check int) "starts empty" 0 (Sys_.total_entries s);
  Alcotest.check_raises "bad peer count"
    (P2prange.Error.Error
       {
         P2prange.Error.code = P2prange.Error.Invalid_topology;
         message = "System.create: n_peers must be positive";
         context = [ ("n_peers", "0") ];
       })
    (fun () -> ignore (Sys_.create ~seed:1L ~n_peers:0 ()))

let peer_lookup () =
  let s = default_system () in
  let p = Sys_.peer_by_name s "peer-3" in
  Alcotest.(check string) "by name" "peer-3" (P2prange.Peer.name p);
  Alcotest.(check string) "by id" "peer-3"
    (P2prange.Peer.name (Sys_.peer_by_id s (P2prange.Peer.id p)));
  Alcotest.check_raises "unknown name" Not_found (fun () ->
      ignore (Sys_.peer_by_name s "nobody"))

let identifiers_deterministic_and_l () =
  let s = default_system () in
  let ids = Sys_.identifiers s (mk 30 50) in
  Alcotest.(check int) "l identifiers" 5 (List.length ids);
  Alcotest.(check (list int)) "stable" ids (Sys_.identifiers s (mk 30 50))

let identifiers_cache_consistency () =
  (* With the domain cache off, identifiers must be identical. *)
  let on = Sys_.create ~config:P2prange.Config.default ~seed:7L ~n_peers:5 () in
  let off =
    Sys_.create
      ~config:{ P2prange.Config.default with use_domain_cache = false }
      ~seed:7L ~n_peers:5 ()
  in
  List.iter
    (fun (lo, hi) ->
      Alcotest.(check (list int))
        (Printf.sprintf "[%d,%d]" lo hi)
        (Sys_.identifiers on (mk lo hi))
        (Sys_.identifiers off (mk lo hi)))
    [ (0, 1000); (0, 0); (500, 600); (999, 1000) ]

let publish_then_query_exact () =
  let s = default_system () in
  let from = Sys_.peer_by_name s "peer-0" in
  let range = mk 30 50 in
  let _ = Sys_.publish s ~from range in
  let result = Sys_.query s ~from:(Sys_.peer_by_name s "peer-5") range in
  (match result.Query_result.matched with
  | Some m ->
    Alcotest.(check bool) "exact range found" true
      (Range.equal m.P2prange.Matching.entry.P2prange.Store.range range)
  | None -> Alcotest.fail "published range must be found by the same query");
  Alcotest.(check (float 1e-9)) "similarity 1" 1.0 result.Query_result.similarity;
  Alcotest.(check (float 1e-9)) "recall 1" 1.0 result.Query_result.recall;
  Alcotest.(check bool) "exact match not re-cached" false result.Query_result.cached

let query_empty_system_caches () =
  let s = default_system () in
  let from = Sys_.peer_by_name s "peer-0" in
  let result = Sys_.query s ~from (mk 100 200) in
  Alcotest.(check bool) "no match in empty system" true
    (result.Query_result.matched = None);
  Alcotest.(check (float 0.0)) "zero recall" 0.0 result.Query_result.recall;
  Alcotest.(check bool) "range cached for the future" true result.Query_result.cached;
  Alcotest.(check bool) "entries appeared" true (Sys_.total_entries s > 0);
  (* The identical query now finds an exact match. *)
  let again = Sys_.query s ~from (mk 100 200) in
  Alcotest.(check (float 1e-9)) "found on retry" 1.0 again.Query_result.recall

let caching_disabled () =
  let config = { P2prange.Config.default with cache_on_inexact = false } in
  let s = default_system ~config () in
  let from = Sys_.peer_by_name s "peer-0" in
  let r = Sys_.query s ~from (mk 100 200) in
  Alcotest.(check bool) "not cached" false r.Query_result.cached;
  Alcotest.(check int) "still empty" 0 (Sys_.total_entries s)

let stats_shape () =
  let s = default_system () in
  let from = Sys_.peer_by_name s "peer-0" in
  let r = Sys_.query s ~from (mk 10 40) in
  Alcotest.(check int) "one hop count per identifier" 5
    (List.length r.Query_result.stats.Query_result.hops);
  Alcotest.(check int) "l identifiers" 5
    (List.length r.Query_result.stats.Query_result.identifiers);
  (* messages = Σ (hops + 1 reply) per lookup *)
  let expected =
    List.fold_left (fun acc h -> acc + h + 1) 0 r.Query_result.stats.Query_result.hops
  in
  Alcotest.(check int) "message accounting" expected r.Query_result.stats.Query_result.messages

let owners_hold_published_entries () =
  let s = default_system () in
  let from = Sys_.peer_by_name s "peer-0" in
  let range = mk 200 300 in
  let stats = Sys_.publish s ~from range in
  List.iter
    (fun identifier ->
      let owner = Sys_.owner_of_identifier s identifier in
      Alcotest.(check bool) "owner's bucket holds the range" true
        (P2prange.Store.mem (P2prange.Peer.store owner) ~identifier ~range))
    stats.Query_result.identifiers

let padding_applied_to_effective () =
  let config =
    { P2prange.Config.default with padding = P2prange.Config.Fixed_padding 0.2 }
  in
  let s = default_system ~config () in
  let from = Sys_.peer_by_name s "peer-0" in
  let r = Sys_.query s ~from (mk 100 199) in
  Alcotest.(check bool) "effective range padded" true
    (Range.equal r.Query_result.effective (mk 80 219));
  Alcotest.(check bool) "query preserved" true (Range.equal r.Query_result.query (mk 100 199))

let padded_cache_serves_inner_queries () =
  let config =
    { P2prange.Config.default with
      padding = P2prange.Config.Fixed_padding 0.2;
      matching = P2prange.Config.Containment_match;
    }
  in
  let s = default_system ~config () in
  let from = Sys_.peer_by_name s "peer-0" in
  ignore (Sys_.query s ~from (mk 100 199));
  (* A near-identical query pads to an effective range with Jaccard ≈ 0.98
     against the cached padded range [80, 219], so at least one of the five
     identifiers collides with near-certainty (deterministic per seed), and
     the cached range contains the original query entirely. *)
  let r = Sys_.query s ~from (mk 100 198) in
  Alcotest.(check bool) "matched" true (r.Query_result.matched <> None);
  Alcotest.(check (float 1e-9)) "full recall via padding" 1.0 r.Query_result.recall

let bounded_stores_enforce_capacity () =
  let config =
    { P2prange.Config.default with store_policy = P2prange.Store.Lru 10 }
  in
  let s = default_system ~config () in
  let from = Sys_.peer_by_name s "peer-0" in
  (* 200 distinct misses, each cached under 5 identifiers: far beyond the
     20 peers × 10 slots available. *)
  for i = 0 to 199 do
    ignore (Sys_.query s ~from (mk (i * 5) ((i * 5) + 3)))
  done;
  List.iter
    (fun p ->
      Alcotest.(check bool) "peer within capacity" true (P2prange.Peer.load p <= 10))
    (Sys_.peers s);
  Alcotest.(check bool) "evictions happened" true (Sys_.total_evictions s > 0)

let deterministic_per_seed () =
  let run () =
    let s = default_system () in
    let from = Sys_.peer_by_name s "peer-0" in
    let r = Sys_.query s ~from (mk 0 500) in
    (r.Query_result.stats.Query_result.identifiers, r.Query_result.stats.Query_result.hops)
  in
  let a = run () and b = run () in
  Alcotest.(check bool) "identical runs" true (a = b)

(* The protocol's cornerstone guarantee: h(Q) = h(Q) for every hash family,
   so a published range is always found — with recall 1 — by an identical
   query from any peer. *)
let prop_published_ranges_always_found =
  let gen =
    QCheck.Gen.(
      let* a = int_range 0 1000 in
      let* b = int_range 0 1000 in
      let* publisher = int_range 0 19 in
      let* asker = int_range 0 19 in
      return (min a b, max a b, publisher, asker))
  in
  QCheck.Test.make ~name:"published ranges are always found exactly" ~count:100
    (QCheck.make
       ~print:(fun (lo, hi, p, a) -> Printf.sprintf "[%d,%d] p%d->p%d" lo hi p a)
       gen)
    (fun (lo, hi, publisher, asker) ->
      let s = default_system () in
      let range = mk lo hi in
      let from = Sys_.peer_by_name s (Printf.sprintf "peer-%d" publisher) in
      ignore (Sys_.publish s ~from range);
      let result =
        Sys_.query s ~from:(Sys_.peer_by_name s (Printf.sprintf "peer-%d" asker)) range
      in
      result.Query_result.recall = 1.0 && result.Query_result.similarity = 1.0
      && not result.Query_result.cached)

(* ---- fault plane integration ---- *)

let faultless_config spec retry =
  { P2prange.Config.default with faults = Some { P2prange.Config.spec; retry } }

let zero_spec_plane_changes_nothing () =
  (* A plane with the all-zero spec must answer every query exactly like
     no plane at all: same matches, no degradation. (The PRNG streams are
     consumed differently, so this checks protocol results, not bits.) *)
  let plain = default_system () in
  let planed =
    default_system
      ~config:(faultless_config Faults.Plane.no_faults Faults.Retry.default)
      ()
  in
  let exercise s =
    let from = Sys_.peer_by_name s "peer-2" in
    ignore (Sys_.publish s ~from (mk 100 200));
    let r = Sys_.query s ~from:(Sys_.peer_by_name s "peer-7") (mk 100 200) in
    (r.Query_result.recall, r.Query_result.similarity, r.Query_result.responders, r.Query_result.degraded)
  in
  let recall_a, sim_a, responders_a, degraded_a = exercise plain in
  let recall_b, sim_b, responders_b, degraded_b = exercise planed in
  Alcotest.(check (float 0.0)) "same recall" recall_a recall_b;
  Alcotest.(check (float 0.0)) "same similarity" sim_a sim_b;
  Alcotest.(check int) "all owners respond" 5 responders_a;
  Alcotest.(check int) "all owners respond under the quiet plane" 5
    responders_b;
  Alcotest.(check bool) "never degraded without faults" false
    (degraded_a || degraded_b)

let total_loss_degrades_gracefully () =
  (* Every owner contact dropped with no retries: the query must come back
     degraded with zero responders — and must not raise. *)
  let spec = { Faults.Plane.no_faults with drop = 1.0 } in
  let s = default_system ~config:(faultless_config spec Faults.Retry.none) () in
  let from = Sys_.peer_by_name s "peer-0" in
  ignore (Sys_.publish s ~from (mk 10 60));
  let r = Sys_.query s ~from (mk 10 60) in
  Alcotest.(check int) "nobody answered" 0 r.Query_result.responders;
  Alcotest.(check bool) "flagged degraded" true r.Query_result.degraded;
  Alcotest.(check bool) "no match over zero responders" true
    (r.Query_result.matched = None);
  Alcotest.(check (float 0.0)) "recall collapses to zero" 0.0 r.Query_result.recall

let retries_restore_responders () =
  (* 30% drop: single-attempt contacts lose owners; the default retry
     policy brings nearly all of them back. *)
  let spec = { Faults.Plane.no_faults with drop = 0.3 } in
  let count retry =
    let s = default_system ~config:(faultless_config spec retry) () in
    let from = Sys_.peer_by_name s "peer-1" in
    let total = ref 0 in
    for i = 0 to 39 do
      let r = Sys_.query s ~from (mk (i * 20) ((i * 20) + 15)) in
      total := !total + r.Query_result.responders
    done;
    !total
  in
  let lone = count Faults.Retry.none in
  let retried = count Faults.Retry.default in
  (* Contacts cross hops+1 legs, each an independent 30% loss, so even
     retried contacts to far owners can exhaust their four attempts — the
     claim is a decisive improvement, not full recovery. *)
  let max_responders = 40 * 5 in
  Alcotest.(check bool)
    (Printf.sprintf "single-attempt loses owners (%d/%d)" lone max_responders)
    true
    (lone < max_responders / 2);
  Alcotest.(check bool)
    (Printf.sprintf "retries restore owners (%d vs %d)" retried lone)
    true
    (retried > 2 * lone)

let crashed_peer_recovers () =
  (* System.fail_peer / System.recover_peer round-trip: the peer's store survives its
     downtime. *)
  let s = default_system () in
  let from = Sys_.peer_by_name s "peer-4" in
  ignore (Sys_.publish s ~from (mk 300 400));
  let owner =
    Sys_.owner_of_identifier s (List.hd (Sys_.identifiers s (mk 300 400)))
  in
  Sys_.fail_peer s owner;
  Alcotest.(check bool) "down" false (Sys_.alive s owner);
  Sys_.recover_peer s owner;
  Alcotest.(check bool) "back up" true (Sys_.alive s owner);
  let r = Sys_.query s ~from (mk 300 400) in
  Alcotest.(check (float 0.0)) "published range found after recovery" 1.0
    r.Query_result.recall

(* --- degenerate invariant audits: report cleanly, never raise --- *)

let invariants_fresh_and_single () =
  (* A freshly built system (nothing published) and the smallest possible
     ring must both audit clean — no invariant can misfire on emptiness. *)
  let fresh = default_system () in
  Alcotest.(check (list string)) "fresh system audits clean" []
    (Sys_.check_invariants fresh);
  let one = Sys_.create ~seed:3L ~n_peers:1 () in
  Alcotest.(check (list string)) "single-peer system audits clean" []
    (Sys_.check_invariants one);
  let from = Sys_.peer_by_name one "peer-0" in
  ignore (Sys_.publish one ~from (mk 100 200));
  Alcotest.(check (list string)) "single peer holding data audits clean" []
    (Sys_.check_invariants one)

let invariants_all_peers_down () =
  (* Every peer failed: the audit must enumerate stranded buckets as
     findings — never raise — and recovery must silence it again. *)
  let s = default_system () in
  let from = Sys_.peer_by_name s "peer-0" in
  ignore (Sys_.publish s ~from (mk 300 400));
  ignore (Sys_.publish s ~from (mk 10 40));
  let peers = Sys_.peers s in
  List.iter (Sys_.fail_peer s) peers;
  let v =
    match Sys_.check_invariants s with
    | v -> v
    | exception e ->
      Alcotest.failf "audit raised on an all-down system: %s"
        (Printexc.to_string e)
  in
  Alcotest.(check bool) "stranded data is reported" true (v <> []);
  List.iter (Sys_.recover_peer s) peers;
  Alcotest.(check (list string)) "clean again after recovery" []
    (Sys_.check_invariants s)

let invariants_all_crashed_via_plane () =
  let config =
    P2prange.Config.default
    |> P2prange.Config.with_faults
         { P2prange.Config.spec = Faults.Plane.no_faults;
           retry = Faults.Retry.default;
         }
  in
  let s = Sys_.create ~config ~seed:7L ~n_peers:8 () in
  let from = Sys_.peer_by_name s "peer-0" in
  ignore (Sys_.publish s ~from (mk 300 400));
  let plane = Option.get (Sys_.fault_plane s) in
  List.iter
    (fun p -> Faults.Plane.crash plane (P2prange.Peer.id p))
    (Sys_.peers s);
  (match Sys_.check_invariants s with
  | _ -> ()
  | exception e ->
    Alcotest.failf "audit raised under an all-crashed plane: %s"
      (Printexc.to_string e));
  List.iter
    (fun p -> Faults.Plane.recover plane (P2prange.Peer.id p))
    (Sys_.peers s);
  Alcotest.(check (list string)) "clean after plane recovery" []
    (Sys_.check_invariants s)

let invariants_detailed_structure () =
  (* The structured audit carries the stable error code, an invariant
     family in context, and projects to exactly the legacy strings. *)
  let s = default_system () in
  let from = Sys_.peer_by_name s "peer-0" in
  ignore (Sys_.publish s ~from (mk 300 400));
  List.iter (Sys_.fail_peer s) (Sys_.peers s);
  let detailed = Sys_.check_invariants_detailed s in
  Alcotest.(check bool) "findings present" true (detailed <> []);
  List.iter
    (fun e ->
      Alcotest.(check string) "code is broken-invariant" "broken-invariant"
        (P2prange.Error.code_name e.P2prange.Error.code);
      Alcotest.(check bool) "context names the invariant family" true
        (List.mem_assoc "invariant" e.P2prange.Error.context))
    detailed;
  Alcotest.(check (list string))
    "string audit is the message projection"
    (List.map (fun e -> e.P2prange.Error.message) detailed)
    (Sys_.check_invariants s)

let suite =
  [
    Alcotest.test_case "construction" `Quick construction;
    Alcotest.test_case "fresh and single-peer systems audit clean" `Quick
      invariants_fresh_and_single;
    Alcotest.test_case "all peers failed: audit reports, never raises" `Quick
      invariants_all_peers_down;
    Alcotest.test_case "all peers crashed via plane: audit survives" `Quick
      invariants_all_crashed_via_plane;
    Alcotest.test_case "detailed audit structure and projection" `Quick
      invariants_detailed_structure;
    QCheck_alcotest.to_alcotest prop_published_ranges_always_found;
    Alcotest.test_case "peer lookup" `Quick peer_lookup;
    Alcotest.test_case "identifiers: count and determinism" `Quick
      identifiers_deterministic_and_l;
    Alcotest.test_case "domain cache gives identical identifiers" `Quick
      identifiers_cache_consistency;
    Alcotest.test_case "publish then exact-match query" `Quick
      publish_then_query_exact;
    Alcotest.test_case "miss caches the queried range" `Quick
      query_empty_system_caches;
    Alcotest.test_case "cache-on-inexact can be disabled" `Quick caching_disabled;
    Alcotest.test_case "lookup stats shape and message accounting" `Quick
      stats_shape;
    Alcotest.test_case "owners hold published entries" `Quick
      owners_hold_published_entries;
    Alcotest.test_case "padding produces the effective range" `Quick
      padding_applied_to_effective;
    Alcotest.test_case "padded caches answer narrower queries" `Quick
      padded_cache_serves_inner_queries;
    Alcotest.test_case "bounded stores enforce capacity" `Quick
      bounded_stores_enforce_capacity;
    Alcotest.test_case "deterministic per seed" `Quick deterministic_per_seed;
    Alcotest.test_case "zero-spec fault plane changes nothing" `Quick
      zero_spec_plane_changes_nothing;
    Alcotest.test_case "total loss degrades gracefully" `Quick
      total_loss_degrades_gracefully;
    Alcotest.test_case "retries restore responders" `Quick
      retries_restore_responders;
    Alcotest.test_case "failed peer recovers with its store" `Quick
      crashed_peer_recovers;
  ]
