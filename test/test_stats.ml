(* Statistics utilities: summaries/percentiles, histograms, CDFs, tables. *)

let summary_basics () =
  let s = Stats.Summary.of_list [ 1.0; 2.0; 3.0; 4.0; 5.0 ] in
  Alcotest.(check int) "count" 5 (Stats.Summary.count s);
  Alcotest.(check (float 1e-9)) "mean" 3.0 (Stats.Summary.mean s);
  Alcotest.(check (float 1e-9)) "min" 1.0 (Stats.Summary.min s);
  Alcotest.(check (float 1e-9)) "max" 5.0 (Stats.Summary.max s);
  Alcotest.(check (float 1e-9)) "median" 3.0 (Stats.Summary.median s);
  Alcotest.(check (float 1e-9)) "total" 15.0 (Stats.Summary.total s);
  Alcotest.(check (float 1e-9)) "stddev" (sqrt 2.0) (Stats.Summary.stddev s)

let percentile_interpolation () =
  let s = Stats.Summary.of_list [ 10.0; 20.0; 30.0; 40.0 ] in
  Alcotest.(check (float 1e-9)) "p0 = min" 10.0 (Stats.Summary.percentile s 0.0);
  Alcotest.(check (float 1e-9)) "p100 = max" 40.0 (Stats.Summary.percentile s 100.0);
  (* rank = 0.5 * 3 = 1.5 → halfway between 20 and 30. *)
  Alcotest.(check (float 1e-9)) "p50 interpolates" 25.0 (Stats.Summary.median s);
  Alcotest.check_raises "out of range"
    (Invalid_argument "Summary.percentile: out of range") (fun () ->
      ignore (Stats.Summary.percentile s 101.0))

let percentile_order_independent () =
  let a = Stats.Summary.of_list [ 5.0; 1.0; 3.0 ] in
  let b = Stats.Summary.of_list [ 1.0; 3.0; 5.0 ] in
  Alcotest.(check (float 1e-9)) "sorted internally" (Stats.Summary.p99 a)
    (Stats.Summary.p99 b)

let summary_singleton_and_empty () =
  let s = Stats.Summary.of_list [ 7.0 ] in
  Alcotest.(check (float 1e-9)) "p1 of singleton" 7.0 (Stats.Summary.p1 s);
  Alcotest.(check (float 1e-9)) "p99 of singleton" 7.0 (Stats.Summary.p99 s);
  Alcotest.check_raises "empty" (Invalid_argument "Summary: empty sample")
    (fun () -> ignore (Stats.Summary.of_list []))

let histogram_bucketing () =
  let h = Stats.Histogram.create ~lo:0.0 ~hi:1.0 ~bins:10 in
  Stats.Histogram.add_many h [ 0.0; 0.05; 0.15; 0.95; 1.0 ];
  let counts = Stats.Histogram.counts h in
  Alcotest.(check int) "first bucket" 2 counts.(0);
  Alcotest.(check int) "second bucket" 1 counts.(1);
  Alcotest.(check int) "hi lands in last bucket" 2 counts.(9);
  Alcotest.(check int) "total" 5 (Stats.Histogram.total h)

let histogram_clamps () =
  let h = Stats.Histogram.create ~lo:0.0 ~hi:1.0 ~bins:4 in
  Stats.Histogram.add h (-5.0);
  Stats.Histogram.add h 7.0;
  let counts = Stats.Histogram.counts h in
  Alcotest.(check int) "below clamps to first" 1 counts.(0);
  Alcotest.(check int) "above clamps to last" 1 counts.(3)

let histogram_fractions () =
  let h = Stats.Histogram.create ~lo:0.0 ~hi:1.0 ~bins:2 in
  Stats.Histogram.add_many h [ 0.1; 0.2; 0.9 ];
  let f = Stats.Histogram.fractions h in
  Alcotest.(check (float 1e-9)) "two thirds" (2.0 /. 3.0) f.(0);
  let p = Stats.Histogram.percentages h in
  Alcotest.(check bool) "sums to 100" true
    (abs_float (Array.fold_left ( +. ) 0.0 p -. 100.0) < 1e-9)

let histogram_empty_fractions () =
  let h = Stats.Histogram.create ~lo:0.0 ~hi:1.0 ~bins:3 in
  Array.iter
    (fun f -> Alcotest.(check (float 0.0)) "zero" 0.0 f)
    (Stats.Histogram.fractions h)

let histogram_bounds () =
  let h = Stats.Histogram.create ~lo:0.0 ~hi:10.0 ~bins:5 in
  let lo, hi = Stats.Histogram.bucket_bounds h 2 in
  Alcotest.(check (float 1e-9)) "bucket lo" 4.0 lo;
  Alcotest.(check (float 1e-9)) "bucket hi" 6.0 hi;
  Alcotest.check_raises "bad construction"
    (Invalid_argument "Histogram.create: bins must be positive") (fun () ->
      ignore (Stats.Histogram.create ~lo:0.0 ~hi:1.0 ~bins:0))

let histogram_drops_non_finite () =
  (* Regression: [int_of_float nan = 0], so NaN used to be silently binned
     into bucket 0 (and infinities clamped into the edge buckets). All
     three are now dropped and counted instead. *)
  let h = Stats.Histogram.create ~lo:0.0 ~hi:1.0 ~bins:4 in
  Stats.Histogram.add_many h [ Float.nan; Float.infinity; Float.neg_infinity ];
  Alcotest.(check int) "nothing binned" 0 (Stats.Histogram.total h);
  Alcotest.(check int) "all three dropped" 3 (Stats.Histogram.dropped h);
  Array.iter
    (fun c -> Alcotest.(check int) "empty bucket" 0 c)
    (Stats.Histogram.counts h);
  Stats.Histogram.add h 0.5;
  Alcotest.(check int) "finite values still count" 1 (Stats.Histogram.total h);
  Alcotest.(check int) "dropped tally unchanged" 3 (Stats.Histogram.dropped h);
  Alcotest.check_raises "bucket_of_value rejects NaN"
    (Invalid_argument "Histogram.bucket_of_value: non-finite value") (fun () ->
      ignore (Stats.Histogram.bucket_of_value h Float.nan))

let histogram_boundary_semantics () =
  (* Buckets are [lo, hi) except the last, which closes at hi. *)
  let h = Stats.Histogram.create ~lo:0.0 ~hi:1.0 ~bins:4 in
  Alcotest.(check int) "lo itself" 0 (Stats.Histogram.bucket_of_value h 0.0);
  Alcotest.(check int) "interior boundary goes right" 1
    (Stats.Histogram.bucket_of_value h 0.25);
  Alcotest.(check int) "just below an interior boundary" 0
    (Stats.Histogram.bucket_of_value h 0.2499);
  Alcotest.(check int) "hi exactly lands in the last bucket" 3
    (Stats.Histogram.bucket_of_value h 1.0);
  Alcotest.(check int) "just below hi" 3
    (Stats.Histogram.bucket_of_value h 0.999);
  (* Sub-lo values clamp to bucket 0 — previously an accident of
     truncation toward zero for scaled values in (-1, 0), now explicit
     (and no longer dependent on how far below lo the value sits). *)
  Alcotest.(check int) "just below lo" 0
    (Stats.Histogram.bucket_of_value h (-0.001));
  Alcotest.(check int) "far below lo" 0
    (Stats.Histogram.bucket_of_value h (-123.0));
  Alcotest.(check int) "above hi clamps to last" 3
    (Stats.Histogram.bucket_of_value h 42.0);
  (* Same on a ring not anchored at zero. *)
  let h2 = Stats.Histogram.create ~lo:(-2.0) ~hi:2.0 ~bins:4 in
  Alcotest.(check int) "negative lo" 0 (Stats.Histogram.bucket_of_value h2 (-2.0));
  Alcotest.(check int) "negative interior" 1
    (Stats.Histogram.bucket_of_value h2 (-0.5));
  Alcotest.(check int) "negative hi" 3 (Stats.Histogram.bucket_of_value h2 2.0)

let cdf_directions () =
  let c = Stats.Cdf.of_samples [ 0.0; 0.25; 0.5; 0.75; 1.0 ] in
  Alcotest.(check (float 1e-9)) "at least 0" 1.0 (Stats.Cdf.fraction_at_least c 0.0);
  Alcotest.(check (float 1e-9)) "at least 1" 0.2 (Stats.Cdf.fraction_at_least c 1.0);
  Alcotest.(check (float 1e-9)) "at least 0.5" 0.6
    (Stats.Cdf.fraction_at_least c 0.5);
  Alcotest.(check (float 1e-9)) "at most 0.5" 0.6 (Stats.Cdf.fraction_at_most c 0.5);
  Alcotest.(check (float 1e-9)) "at most below min" 0.0
    (Stats.Cdf.fraction_at_most c (-0.1));
  Alcotest.(check (float 1e-9)) "percent form" 60.0
    (Stats.Cdf.percent_at_least c 0.5)

let cdf_with_ties () =
  let c = Stats.Cdf.of_samples [ 1.0; 1.0; 1.0; 0.0 ] in
  Alcotest.(check (float 1e-9)) "ties counted" 0.75
    (Stats.Cdf.fraction_at_least c 1.0)

let cdf_series () =
  let c = Stats.Cdf.of_samples [ 0.2; 0.8 ] in
  let s = Stats.Cdf.series c ~thresholds:[ 1.0; 0.5; 0.0 ] in
  Alcotest.(check int) "three points" 3 (List.length s);
  Alcotest.(check (float 1e-9)) "middle" 50.0 (snd (List.nth s 1))

let cdf_singleton_and_empty () =
  let c = Stats.Cdf.of_samples [ 0.4 ] in
  Alcotest.(check int) "one sample" 1 (Stats.Cdf.count c);
  Alcotest.(check (float 1e-9)) "at least below" 1.0
    (Stats.Cdf.fraction_at_least c 0.0);
  Alcotest.(check (float 1e-9)) "at least at the sample" 1.0
    (Stats.Cdf.fraction_at_least c 0.4);
  Alcotest.(check (float 1e-9)) "at least above" 0.0
    (Stats.Cdf.fraction_at_least c 0.5);
  Alcotest.(check (float 1e-9)) "at most below" 0.0
    (Stats.Cdf.fraction_at_most c 0.3);
  Alcotest.(check (float 1e-9)) "at most at the sample" 1.0
    (Stats.Cdf.fraction_at_most c 0.4);
  Alcotest.check_raises "empty" (Invalid_argument "Cdf.of_samples: empty sample")
    (fun () -> ignore (Stats.Cdf.of_samples []))

let table_rendering () =
  let t =
    Stats.Table.create
      ~columns:[ ("name", Stats.Table.Left); ("value", Stats.Table.Right) ]
  in
  Stats.Table.add_row t [ "alpha"; "1" ];
  Stats.Table.add_row t [ "b"; "22" ];
  let s = Stats.Table.to_string t in
  let lines = String.split_on_char '\n' (String.trim s) in
  Alcotest.(check int) "header + rule + 2 rows" 4 (List.length lines);
  Alcotest.check_raises "row arity"
    (Invalid_argument "Table.add_row: row length mismatch") (fun () ->
      Stats.Table.add_row t [ "too"; "many"; "cells" ])

let summary_rejects_nan () =
  (* Regression: the float sort used polymorphic [compare], which ranks NaN
     arbitrarily; NaN inputs are now rejected outright. *)
  Alcotest.check_raises "NaN in list" (Invalid_argument "Summary: NaN in sample")
    (fun () -> ignore (Stats.Summary.of_list [ 1.0; Float.nan; 2.0 ]));
  Alcotest.check_raises "NaN in array"
    (Invalid_argument "Summary: NaN in sample") (fun () ->
      ignore (Stats.Summary.of_array [| Float.nan |]))

let summary_orders_special_floats () =
  (* Float.compare must order negatives, zeros and infinities correctly. *)
  let s = Stats.Summary.of_list [ 3.5; Float.neg_infinity; -2.0; 0.0; Float.infinity; -0.0 ] in
  Alcotest.(check (float 0.0)) "min" Float.neg_infinity (Stats.Summary.min s);
  Alcotest.(check (float 0.0)) "max" Float.infinity (Stats.Summary.max s);
  Alcotest.(check (float 1e-9)) "median averages the zeros" 0.0
    (Stats.Summary.median s)

let prop_percentile_monotone =
  QCheck.Test.make ~name:"percentiles are monotone in p" ~count:300
    QCheck.(list_of_size (Gen.int_range 1 40) (float_range (-100.) 100.))
    (fun xs ->
      QCheck.assume (xs <> []);
      let s = Stats.Summary.of_list xs in
      let ps = [ 0.0; 10.0; 25.0; 50.0; 75.0; 90.0; 99.0; 100.0 ] in
      let values = List.map (Stats.Summary.percentile s) ps in
      let rec sorted = function
        | a :: (b :: _ as rest) -> a <= b +. 1e-9 && sorted rest
        | _ -> true
      in
      sorted values)

let suite =
  [
    Alcotest.test_case "summary basics" `Quick summary_basics;
    Alcotest.test_case "percentile interpolation" `Quick percentile_interpolation;
    Alcotest.test_case "percentiles ignore input order" `Quick
      percentile_order_independent;
    Alcotest.test_case "singleton and empty summaries" `Quick
      summary_singleton_and_empty;
    Alcotest.test_case "summary rejects NaN samples" `Quick summary_rejects_nan;
    Alcotest.test_case "summary orders special floats" `Quick
      summary_orders_special_floats;
    Alcotest.test_case "histogram bucketing" `Quick histogram_bucketing;
    Alcotest.test_case "histogram clamps out-of-range values" `Quick
      histogram_clamps;
    Alcotest.test_case "histogram fractions and percentages" `Quick
      histogram_fractions;
    Alcotest.test_case "empty histogram has zero fractions" `Quick
      histogram_empty_fractions;
    Alcotest.test_case "bucket bounds and validation" `Quick histogram_bounds;
    Alcotest.test_case "histogram drops non-finite values" `Quick
      histogram_drops_non_finite;
    Alcotest.test_case "histogram boundary semantics" `Quick
      histogram_boundary_semantics;
    Alcotest.test_case "cdf both directions" `Quick cdf_directions;
    Alcotest.test_case "cdf with ties" `Quick cdf_with_ties;
    Alcotest.test_case "cdf series" `Quick cdf_series;
    Alcotest.test_case "cdf singleton and empty" `Quick cdf_singleton_and_empty;
    Alcotest.test_case "table rendering" `Quick table_rendering;
    QCheck_alcotest.to_alcotest prop_percentile_monotone;
  ]
