(* Model-based testing of the full protocol: a trivially-correct reference
   implementation (a flat identifier → ranges table, no Chord, no peers)
   must agree with the real System on every query's match, similarity,
   recall and caching decision, over arbitrary operation sequences.

   The reference shares the System's identifiers (via System.identifiers),
   isolating the parts under test: routing, per-peer stores, reply
   selection and the cache protocol. *)

module Range = Rangeset.Range

(* The reference: buckets keyed by identifier, global (no peer split). *)
module Model = struct
  type t = { buckets : (int, Range.t list) Hashtbl.t }

  let create () = { buckets = Hashtbl.create 64 }

  let bucket t id = Option.value (Hashtbl.find_opt t.buckets id) ~default:[]

  let insert t id range =
    if not (List.exists (Range.equal range) (bucket t id)) then
      Hashtbl.replace t.buckets id (range :: bucket t id)

  (* Mirror of Matching.best with Jaccard policy over the union of the
     query's buckets. *)
  let query t ~ids ~matching range =
    let candidates = List.concat_map (bucket t) ids in
    let score r =
      match matching with
      | P2prange.Config.Jaccard_match -> Range.jaccard range r
      | P2prange.Config.Containment_match ->
        Range.containment ~query:range ~answer:r
    in
    let best =
      List.fold_left
        (fun acc r ->
          let s = score r in
          if s <= 0.0 then acc
          else
            match acc with
            | Some (br, bs) ->
              if
                s > bs
                || (s = bs && Range.cardinal r < Range.cardinal br)
              then Some (r, s)
              else acc
            | None -> Some (r, s))
        None candidates
    in
    let exact =
      match best with Some (r, _) -> Range.equal r range | None -> false
    in
    if not exact then List.iter (fun id -> insert t id range) ids;
    best
end

let operations_gen =
  QCheck.Gen.(
    list_size (int_range 1 60)
      (let* a = int_range 0 300 in
       let* b = int_range 0 300 in
       let* peer = int_range 0 9 in
       return (peer, min a b, max a b)))

let arb_ops =
  QCheck.make
    ~print:(fun ops ->
      String.concat ";"
        (List.map (fun (p, lo, hi) -> Printf.sprintf "p%d:[%d,%d]" p lo hi) ops))
    operations_gen

let agree_with_model matching =
  QCheck.Test.make
    ~name:
      (Printf.sprintf "System agrees with the flat-table model (%s)"
         (match matching with
         | P2prange.Config.Jaccard_match -> "jaccard"
         | P2prange.Config.Containment_match -> "containment"))
    ~count:60 arb_ops
    (fun ops ->
      let config =
        { P2prange.Config.default with
          matching;
          domain = Range.make ~lo:0 ~hi:300;
        }
      in
      let system = P2prange.System.create ~config ~seed:97L ~n_peers:10 () in
      let model = Model.create () in
      List.for_all
        (fun (peer, lo, hi) ->
          let range = Range.make ~lo ~hi in
          let from =
            P2prange.System.peer_by_name system (Printf.sprintf "peer-%d" peer)
          in
          let ids = P2prange.System.identifiers system range in
          let expected = Model.query model ~ids ~matching range in
          let actual = P2prange.System.query system ~from range in
          match (expected, actual.P2prange.Query_result.matched) with
          | None, None -> actual.P2prange.Query_result.recall = 0.0
          | Some (r, s), Some m ->
            Range.equal r m.P2prange.Matching.entry.P2prange.Store.range
            && abs_float (s -. m.P2prange.Matching.score) < 1e-12
          | None, Some _ | Some _, None -> false)
        ops)

let suite =
  [
    QCheck_alcotest.to_alcotest (agree_with_model P2prange.Config.Jaccard_match);
    QCheck_alcotest.to_alcotest
      (agree_with_model P2prange.Config.Containment_match);
  ]
