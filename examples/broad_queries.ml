(* Broad queries and padding — the §5.2 user story.

   P2P users ask broad queries and accept approximate answers. This example
   streams a hotspot-skewed query workload through three system
   configurations and compares what fraction of each query's answer the
   located partitions cover:

     1. Jaccard bucket matching (the LSH-native policy, Fig. 6-8);
     2. containment matching (pick whatever covers the query best, Fig. 9);
     3. containment + 20% query padding (Fig. 10);
     4. containment + adaptive padding (the paper's future-work idea).

   Run with:  dune exec examples/broad_queries.exe *)

module Config = P2prange.Config
module Simulation = P2prange.Simulation

let describe label run =
  let cdf = Simulation.recall_cdf run in
  let complete = 100.0 *. Simulation.fraction_complete run in
  let unmatched = 100.0 *. Simulation.fraction_unmatched run in
  Format.printf "%-28s complete %5.1f%%  |  recall>=0.8 %5.1f%%  |  unmatched %4.1f%%@."
    label complete
    (Stats.Cdf.percent_at_least cdf 0.8)
    unmatched

let () =
  let n_queries = 4000 in
  (* Hotspot workload: most queries target a handful of popular regions —
     the regime where caching pays off most. *)
  let workload =
    Workload.Query_workload.Zipf_hotspots { hotspots = 50; spread = 120; s = 1.1 }
  in
  let run config =
    Simulation.run ~config ~n_peers:64 ~n_queries ~workload ~seed:5202L ()
  in
  Format.printf
    "broad-query workload: %d queries, 50 Zipf hotspots over [0, 1000]@.@."
    n_queries;
  describe "jaccard matching"
    (run (Config.default |> Config.with_matching Config.Jaccard_match));
  describe "containment matching"
    (run (Config.default |> Config.with_matching Config.Containment_match));
  describe "containment + 20% padding"
    (run
       (Config.default
       |> Config.with_matching Config.Containment_match
       |> Config.with_padding (Config.Fixed_padding 0.2)));
  describe "containment + adaptive pad"
    (run
       (Config.default
       |> Config.with_matching Config.Containment_match
       |> Config.with_padding
            (Config.Adaptive_padding
               { initial = 0.0; step = 0.01; target_recall = 0.95 })));
  Format.printf
    "@.Containment matching chooses broader cached partitions, so more@.";
  Format.printf
    "queries are answered completely; padding widens what gets cached and@.";
  Format.printf
    "pushes completeness further, at the cost of shipping extra tuples —@.";
  Format.printf "the exact trade-off of the paper's Figures 9 and 10.@."
