(* The paper's §2 walkthrough, end to end.

   Global schema: Patient / Diagnosis / Physician / Prescription. A peer
   asks: "what prescriptions were given to patients diagnosed with Glaucoma,
   aged 30-50, between 2000-01-01 and 2002-12-31?" (the paper's Figures 1-2).

   The engine pushes the three selections to the plan's leaves, answers each
   leaf over the P2P system (range-LSH for age and date, exact-match DHT for
   the diagnosis string), computes the joins locally, and caches every
   fetched partition — so a second, similar query is served without touching
   the sources.

   Run with:  dune exec examples/medical_records.exe *)

module Q = Relational.Query
module P = Relational.Predicate
module S = Relational.Schema
module R = Relational.Relation
module V = Relational.Value
module Range = Rangeset.Range
module Engine = P2prange.Engine

let date y m d = V.date_of_ymd ~year:y ~month:m ~day:d

let day y m d =
  match date y m d with
  | V.Date n -> n
  | V.Int _ | V.Float _ | V.String _ -> assert false

(* --- synthetic hospital database (the data sources) --- *)

let rng = Prng.Splitmix.create 1899L

let diagnoses_pool =
  [| "Glaucoma"; "Asthma"; "Diabetes"; "Hypertension"; "Migraine" |]

let prescriptions_pool =
  [| "timolol"; "latanoprost"; "albuterol"; "metformin"; "lisinopril";
     "sumatriptan"; "brimonidine" |]

let n_patients = 2000

let patients =
  let schema = S.make [ ("patient_id", V.Tint); ("name", V.Tstring); ("age", V.Tint) ] in
  R.create ~name:"Patient" ~schema
    (List.init n_patients (fun i ->
         [|
           V.Int i;
           V.String (Printf.sprintf "patient-%04d" i);
           V.Int (Prng.Splitmix.int_in_range rng ~lo:0 ~hi:99);
         |]))

let diagnoses =
  let schema =
    S.make
      [ ("patient_id", V.Tint); ("diagnosis", V.Tstring);
        ("physician_id", V.Tint); ("prescription_id", V.Tint) ]
  in
  R.create ~name:"Diagnosis" ~schema
    (List.init n_patients (fun i ->
         [|
           V.Int i;
           V.String diagnoses_pool.(Prng.Splitmix.int rng (Array.length diagnoses_pool));
           V.Int (Prng.Splitmix.int_in_range rng ~lo:0 ~hi:49);
           V.Int (10_000 + i);
         |]))

let prescriptions =
  let schema =
    S.make
      [ ("prescription_id", V.Tint); ("date", V.Tdate); ("prescription", V.Tstring) ]
  in
  R.create ~name:"Prescription" ~schema
    (List.init n_patients (fun i ->
         let y = Prng.Splitmix.int_in_range rng ~lo:1998 ~hi:2003 in
         let m = Prng.Splitmix.int_in_range rng ~lo:1 ~hi:12 in
         let d = Prng.Splitmix.int_in_range rng ~lo:1 ~hi:28 in
         [|
           V.Int (10_000 + i);
           date y m d;
           V.String prescriptions_pool.(Prng.Splitmix.int rng (Array.length prescriptions_pool));
         |]))

(* --- the paper's query (Figure 1), as SQL text --- *)

let glaucoma_sql ~age_lo ~age_hi =
  Printf.sprintf
    "SELECT Prescription.prescription \
     FROM Patient, Diagnosis, Prescription \
     WHERE %d <= age <= %d \
     AND diagnosis = 'Glaucoma' \
     AND Patient.patient_id = Diagnosis.patient_id \
     AND DATE '2000-01-01' <= date <= DATE '2002-12-31' \
     AND Diagnosis.prescription_id = Prescription.prescription_id"
    age_lo age_hi

let provenance_name = function
  | Engine.From_cache qr ->
    Printf.sprintf "cached partition (recall %.2f)" qr.P2prange.Query_result.recall
  | Engine.From_source { published } ->
    if published then "source fetch, partition published" else "source fetch"
  | Engine.From_exact_dht { hit } ->
    if hit then "exact-match DHT hit" else "exact-match DHT miss -> source"
  | Engine.Full_relation -> "full relation scan"

let report label answer =
  Format.printf "@.--- %s ---@." label;
  List.iter
    (fun leaf ->
      Format.printf "  leaf %-13s [%s]  %d tuples via %s@."
        leaf.Engine.relation
        (String.concat " AND "
           (List.map
              (fun p -> Format.asprintf "%a" P.pp p)
              leaf.Engine.predicates))
        leaf.Engine.tuples_fetched
        (provenance_name leaf.Engine.provenance))
    answer.Engine.leaves;
  Format.printf
    "  result: %d prescriptions | overlay messages: %d | source fetches: %d | recall est.: %.2f@."
    (R.cardinality answer.Engine.result)
    answer.Engine.messages answer.Engine.source_fetches
    answer.Engine.recall_estimate

let () =
  Format.printf "medical-records example: %d patients, %d diagnoses, %d prescriptions@."
    (R.cardinality patients) (R.cardinality diagnoses) (R.cardinality prescriptions);
  let engine =
    Engine.create ~seed:2003L ~n_peers:50
      ~sources:[ patients; diagnoses; prescriptions ]
      ~rangeable:
        [
          (("Patient", "age"), Range.make ~lo:0 ~hi:120);
          (("Prescription", "date"),
           Range.make ~lo:(day 1995 1 1) ~hi:(day 2005 12 31));
        ]
      ()
  in
  let lookup name = R.schema (Engine.source engine name) in
  Format.printf "@.SQL:@.  %s@." (glaucoma_sql ~age_lo:30 ~age_hi:50);
  Format.printf "@.query plan (parsed, after selection push-down):@.%a" Q.pp
    (Relational.Planner.push_selections
       (Relational.Sql.parse_query (glaucoma_sql ~age_lo:30 ~age_hi:50) ~lookup)
       ~lookup);

  (* 1st execution: cold system — every leaf goes to its source, and the
     fetched partitions are published into the DHT. *)
  let first =
    Engine.execute_sql engine ~from_name:"peer-7" (glaucoma_sql ~age_lo:30 ~age_hi:50)
  in
  report "first execution (cold caches)" first;

  (* 2nd execution from a different peer: all three leaves are now served
     from the P2P caches. *)
  let second =
    Engine.execute_sql engine ~from_name:"peer-31" (glaucoma_sql ~age_lo:30 ~age_hi:50)
  in
  report "second execution, different peer (warm caches)" second;

  (* 3rd execution: a *similar* query — ages 30-49 instead of 30-50. The
     exact partition was never cached, but LSH finds the similar one; with
     no source access allowed we accept the approximate answer. *)
  let third =
    Engine.execute_sql engine ~from_name:"peer-13" ~allow_source:false
      (glaucoma_sql ~age_lo:30 ~age_hi:49)
  in
  report "similar query (ages 30-49), approximate only" third;
  Format.printf
    "@.The approximate answer is a subset of the exact one, obtained without@."
  ;
  Format.printf
    "touching any source relation — the behaviour the paper's §1 motivates.@."
