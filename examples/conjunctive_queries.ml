(* Multi-attribute selections — the paper's first future-work item (§6).

   A conjunctive range query like

     30 <= age <= 50  AND  70 <= weight <= 110

   is located one attribute at a time over per-attribute DHTs; a tuple must
   satisfy every conjunct, so the answer coverage is bounded by the weakest
   conjunct. This example seeds caches unevenly (age queries are popular,
   weight queries rare) and shows how the combined recall follows the
   starved attribute — and how padding closes the gap.

   Run with:  dune exec examples/conjunctive_queries.exe *)

module Range = Rangeset.Range
module MA = P2prange.Multi_attr

let rng = Prng.Splitmix.create 44L

let random_range ~domain ~max_width =
  let lo =
    Prng.Splitmix.int_in_range rng ~lo:(Range.lo domain)
      ~hi:(Range.hi domain - max_width)
  in
  let width = Prng.Splitmix.int_in_range rng ~lo:10 ~hi:max_width in
  Range.make ~lo ~hi:(lo + width - 1)

let age_domain = Range.make ~lo:0 ~hi:120
let weight_domain = Range.make ~lo:0 ~hi:300

let run_experiment ~label ~config =
  let t =
    MA.create ~config ~seed:77L ~n_peers:32
      ~attributes:[ ("age", age_domain); ("weight", weight_domain) ]
      ()
  in
  (* Seed: 400 historical age queries but only 40 weight queries. *)
  let seed_attr attr domain count =
    let system = MA.system_for t attr in
    for i = 0 to count - 1 do
      let from =
        P2prange.System.peer_by_name system (Printf.sprintf "peer-%d" (i mod 32))
      in
      ignore (P2prange.System.publish system ~from (random_range ~domain ~max_width:40))
    done
  in
  seed_attr "age" age_domain 400;
  seed_attr "weight" weight_domain 40;
  (* Issue 300 conjunctive queries and aggregate recall per conjunct. *)
  let n = 300 in
  let age_recall = ref 0.0 and weight_recall = ref 0.0 and combined = ref 0.0 in
  let complete = ref 0 in
  for i = 0 to n - 1 do
    let result =
      MA.query t
        ~from_name:(Printf.sprintf "peer-%d" (i mod 32))
        [
          { MA.attribute = "age"; range = random_range ~domain:age_domain ~max_width:40 };
          { MA.attribute = "weight";
            range = random_range ~domain:weight_domain ~max_width:40 };
        ]
    in
    (match result.MA.conjuncts with
    | [ (_, age); (_, weight) ] ->
      age_recall := !age_recall +. age.P2prange.Query_result.recall;
      weight_recall := !weight_recall +. weight.P2prange.Query_result.recall
    | _ -> assert false);
    combined := !combined +. result.MA.combined_recall;
    if result.MA.combined_recall >= 1.0 then incr complete
  done;
  let f x = x /. float_of_int n in
  Format.printf
    "%-24s mean recall: age %.2f | weight %.2f | combined %.2f | fully answered %d/%d@."
    label (f !age_recall) (f !weight_recall) (f !combined) !complete n

let () =
  Format.printf
    "conjunctive queries over two attributes (age: warm cache, weight: cold)@.@.";
  run_experiment ~label:"containment matching"
    ~config:
      (P2prange.Config.default
      |> P2prange.Config.with_matching P2prange.Config.Containment_match);
  run_experiment ~label:"  + 20% padding"
    ~config:
      (P2prange.Config.default
      |> P2prange.Config.with_matching P2prange.Config.Containment_match
      |> P2prange.Config.with_padding (P2prange.Config.Fixed_padding 0.2));
  Format.printf
    "@.The combined recall tracks the starved (weight) attribute — the@.";
  Format.printf
    "minimum rule of Multi_attr. Padding lifts exactly that weak conjunct@.";
  Format.printf
    "(broader cached ranges cover more queries), so it pays off most where@.";
  Format.printf "the cache is coldest.@."
