(* Churn resilience of the Chord substrate.

   The paper assumes a converged overlay; this example exercises the
   dynamic protocol underneath it: nodes join through a bootstrap peer,
   stabilize, suffer a wave of abrupt failures, and repair. Throughout, we
   issue lookups and report how many reach the correct owner and at what
   hop cost.

   A second act moves one layer up: what failures cost the *data*, not
   just the routing. Two identical range-selection systems — hot-bucket
   replication off and on — serve the same skewed query stream, lose the
   same peers, and report the recall each retains.

   A third act turns on the deterministic fault plane: messages drop,
   nodes crash and come back, and lookups survive (or don't) depending on
   whether retry/backoff routing is enabled.

   Run with:  dune exec examples/churn_resilience.exe
   Optionally `-- --series FILE` records the metric timeline (stabilize
   rounds, fault sends/drops, crash/recover marks) for timeline.exe. *)

module Network = Chord.Network

let series_path =
  match Array.to_list Sys.argv with
  | _ :: "--series" :: path :: _ -> Some path
  | _ -> None

let () = if series_path <> None then Obs.Series.enable ()

let rng = Prng.Splitmix.create 777L

let random_id () = Prng.Splitmix.int rng Chord.Id.modulus

let lookup_health net ~label =
  let nodes = Array.of_list (Network.node_ids net) in
  let ring = Network.to_ring net in
  let total = 500 and ok = ref 0 and correct = ref 0 and hops_sum = ref 0 in
  for _ = 1 to total do
    let from = nodes.(Prng.Splitmix.int rng (Array.length nodes)) in
    let key = random_id () in
    match Network.find_successor net ~from ~key with
    | Some (owner, hops) ->
      incr ok;
      hops_sum := !hops_sum + hops;
      if owner = Chord.Ring.owner ring key then incr correct
    | None -> ()
  done;
  Format.printf
    "%-32s nodes=%-4d routed %3d/%d  correct owner %3d/%d  mean hops %.2f@."
    label (Network.size net) !ok total !correct total
    (float_of_int !hops_sum /. float_of_int (Stdlib.max 1 !ok))

let () =
  let net = Network.create ~successor_list_length:8 () in
  let bootstrap = random_id () in
  Network.add_first net bootstrap;

  (* 60 nodes join through the bootstrap node, stabilizing as they come. *)
  let ids = ref [ bootstrap ] in
  for _ = 1 to 60 do
    let id = random_id () in
    if not (List.mem id !ids) then begin
      Network.join net id ~via:bootstrap;
      ids := id :: !ids;
      Network.stabilize net ~rounds:2
    end
  done;
  Network.stabilize net ~rounds:8;
  Format.printf "converged after joins: %b@.@." (Network.is_converged net);
  lookup_health net ~label:"after 61 joins + stabilization";

  (* A quarter of the network fails abruptly — no goodbyes. *)
  let victims =
    List.filteri (fun i id -> i mod 4 = 0 && id <> bootstrap) !ids
  in
  List.iter (Network.fail net) victims;
  Format.printf "@.killed %d nodes abruptly@." (List.length victims);
  lookup_health net ~label:"immediately after failures";

  (* Stabilization repairs successors, predecessors and fingers. *)
  Network.stabilize net ~rounds:12;
  Format.printf "@.re-converged after repair: %b@." (Network.is_converged net);
  lookup_health net ~label:"after 12 stabilization rounds";

  (* Fresh nodes can still join the repaired network. *)
  for _ = 1 to 10 do
    let id = random_id () in
    if not (Network.alive net id) then Network.join net id ~via:bootstrap;
    Network.stabilize net ~rounds:2
  done;
  Network.stabilize net ~rounds:8;
  Format.printf "@.after 10 more joins, converged: %b@." (Network.is_converged net);
  lookup_health net ~label:"after post-repair joins";

  (* ---- act two: recall through failures, with and without replication.

     Same seed, same peers, same Zipf-skewed queries; the only difference
     is the [replication] knob. One identifier per range (l = 1) so a
     failed owner really is the only native holder of its buckets. *)
  let module System = P2prange.System in
  let module Query_result = P2prange.Query_result in
  let module Config = P2prange.Config in
  let base =
    Config.default
    |> Config.with_matching Config.Containment_match
    |> Config.with_spread_identifiers true
    |> Config.with_kl ~k:Config.default.Config.k ~l:1
  in
  let replicated =
    base
    |> Config.with_balancing
         (Config.Replicate
            { r = 2; hot = Balance.Tracker.Absolute 8; window = 1024 })
  in
  let n_peers = 48 in
  let systems =
    List.map
      (fun (label, config) ->
        (label, System.create ~config ~seed:777L ~n_peers ()))
      [ ("replication off", base); ("replication on", replicated) ]
  in
  let run sys ~stream_seed ~n =
    let rng = Prng.Splitmix.create stream_seed in
    let stream =
      Workload.Query_workload.create
        (Workload.Query_workload.Zipf_hotspots
           { hotspots = 8; spread = 8; s = 1.0 })
        ~domain:base.Config.domain ~seed:stream_seed
    in
    let live =
      Array.of_list (List.filter (System.alive sys) (System.peers sys))
    in
    let total = ref 0.0 in
    for _ = 1 to n do
      let from = live.(Prng.Splitmix.int rng (Array.length live)) in
      let r = System.query sys ~from (Workload.Query_workload.next stream) in
      total := !total +. r.Query_result.recall
    done;
    !total /. float_of_int n
  in
  Format.printf "@.--- recall through failures (same peers, same queries) ---@.";
  let warm =
    List.map (fun (label, sys) -> (label, sys, run sys ~stream_seed:777L ~n:3000))
      systems
  in
  (* The same third of the peers fails in both systems: the most loaded
     ones of the unreplicated run, i.e. the hot-bucket owners. *)
  let victims =
    let _, off, _ = List.hd warm in
    System.peers off
    |> List.map (fun p ->
           ( Balance.Tracker.peer_load (System.tracker off) (P2prange.Peer.id p),
             P2prange.Peer.name p ))
    |> List.sort (fun (la, na) (lb, nb) ->
           if la <> lb then Int.compare lb la else String.compare na nb)
    |> List.filteri (fun i _ -> i < n_peers / 3)
    |> List.map snd
  in
  List.iter
    (fun (_, sys, _) ->
      List.iter (fun name -> System.fail_peer sys (System.peer_by_name sys name)) victims)
    warm;
  List.iter
    (fun (label, sys, before) ->
      let after = run sys ~stream_seed:778L ~n:1000 in
      Format.printf
        "%-16s recall %.3f -> %.3f after %d failures  (replicated buckets: %d)@."
        label before after (List.length victims)
        (System.replicated_buckets sys))
    warm;

  (* ---- act three: the fault plane — drops, crashes, retries.

     A fresh converged overlay under a seeded fault plane: 15% of
     messages drop, and lookups run once without retries, then with the
     default backoff policy. Then a node crash/recover cycle shows the
     network routing around a silent node and re-absorbing it. *)
  let module Plane = Faults.Plane in
  Format.printf "@.--- act three: deterministic fault injection ---@.";
  let net2 = Network.create ~successor_list_length:8 () in
  let bootstrap2 = random_id () in
  Network.add_first net2 bootstrap2;
  for _ = 1 to 47 do
    let id = random_id () in
    if not (Network.alive net2 id) then begin
      Network.join net2 id ~via:bootstrap2;
      Network.stabilize net2 ~rounds:2
    end
  done;
  Network.stabilize net2 ~rounds:10;
  lookup_health net2 ~label:"fault-free baseline";
  let spec = { Plane.no_faults with Plane.drop = 0.15 } in
  Network.set_faults net2 ~retry:Faults.Retry.none
    (Plane.create ~spec ~seed:778L ());
  lookup_health net2 ~label:"15% drop, no retries";
  Network.set_faults net2 ~retry:Faults.Retry.default
    (Plane.create ~spec ~seed:778L ());
  lookup_health net2 ~label:"15% drop, retry/backoff";
  (* Crash a node under a clean plane: routing skirts it, then it
     recovers and stabilization welcomes it back. *)
  let plane = Plane.create ~seed:779L () in
  Network.set_faults net2 plane;
  let victim = List.nth (Network.node_ids net2) 7 in
  Plane.crash plane victim;
  Network.stabilize net2 ~rounds:8;
  Format.printf "@.crashed one node (still alive, not responding)@.";
  lookup_health net2 ~label:"routing around the crashed node";
  Plane.recover plane victim;
  Plane.tick plane;
  Network.stabilize net2 ~rounds:10;
  Format.printf "node recovered; converged again: %b@."
    (Network.is_converged net2);
  lookup_health net2 ~label:"after crash/recover cycle";
  match series_path with
  | None -> ()
  | Some path ->
    Obs.Series.write path;
    Format.printf "series written to %s@." path
