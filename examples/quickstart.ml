(* Quickstart: the core loop of the paper in ~40 lines.

   Build a small P2P system, publish one cached range partition, then ask
   for a *different but similar* range and watch locality-sensitive hashing
   route us to the cached data.

   Run with:  dune exec examples/quickstart.exe
   Pass a file argument to also record a per-query trace there (JSONL,
   or Chrome trace-event JSON for .json paths):
              dune exec examples/quickstart.exe trace.jsonl *)

module Range = Rangeset.Range
module System = P2prange.System
module Query_result = P2prange.Query_result

let trace_path = if Array.length Sys.argv > 1 then Some Sys.argv.(1) else None

let () =
  (match trace_path with
  | None -> ()
  | Some _ ->
    Obs.Trace.enable ();
    Obs.Trace.reset ());
  (* 1. A system of 16 peers on a 32-bit Chord ring, using the paper's
        defaults: approximate min-wise hashing, (k, l) = (20, 5), attribute
        domain [0, 1000]. Everything is deterministic in the seed. *)
  let system = System.create ~seed:2003L ~n_peers:16 () in
  Format.printf "system: %d peers on a %d-bit identifier ring@."
    (System.peer_count system) Chord.Id.bits;

  (* 2. Some peer computed `SELECT * FROM Patient WHERE 30 <= age <= 50`
        earlier and publishes the partition's range under its l = 5 LSH
        identifiers. *)
  let publisher = System.peer_by_name system "peer-3" in
  let cached = Range.make ~lo:30 ~hi:50 in
  let stats = System.publish system ~from:publisher cached in
  Format.printf "@.published partition %s under %d identifiers:@."
    (Range.to_string cached)
    (List.length stats.Query_result.identifiers);
  List.iter
    (fun id -> Format.printf "  identifier %08x -> peer %a@." id
        Chord.Id.pp (P2prange.Peer.id (System.owner_of_identifier system id)))
    stats.Query_result.identifiers;

  (* 3. Another peer asks for ages 30-49 — NOT the cached range, but with
        Jaccard similarity 20/21 ≈ 0.95, so with high probability at least
        one of its five identifiers collides with the cached partition's. *)
  let asker = System.peer_by_name system "peer-11" in
  let query = Range.make ~lo:30 ~hi:49 in
  let result = System.query system ~from:asker query in
  Format.printf "@.query %s from %s:@." (Range.to_string query)
    (P2prange.Peer.name asker);
  (match result.Query_result.matched with
  | Some m ->
    Format.printf "  matched cached partition %s@."
      (Range.to_string m.P2prange.Matching.entry.P2prange.Store.range);
    Format.printf "  jaccard similarity: %.3f   recall: %.3f@."
      result.Query_result.similarity result.Query_result.recall
  | None -> Format.printf "  no match found (unlucky hash draw)@.");
  Format.printf "  overlay hops per identifier lookup: %s@."
    (String.concat ", "
       (List.map string_of_int result.Query_result.stats.Query_result.hops));

  (* 4. A dissimilar range finds nothing — and gets cached for next time. *)
  let far = Range.make ~lo:700 ~hi:800 in
  let miss = System.query system ~from:asker far in
  Format.printf "@.query %s: %s (cached for future queries: %b)@."
    (Range.to_string far)
    (match miss.Query_result.matched with Some _ -> "matched" | None -> "no match")
    miss.Query_result.cached;

  (* 5. Optionally dump the trace the run recorded: every span from LSH
        signature computation through Chord hops to result assembly, on a
        logical clock, so the same seed yields the same bytes. *)
  match trace_path with
  | None -> ()
  | Some path ->
    Obs.Trace.write path;
    Format.printf "@.trace written to %s (%d spans)@." path
      (Obs.Trace.span_count ())
